// Statistical QA: simulation-based recovery tests. Simulate data under
// KNOWN parameters with the coalescent simulators, run the FULL inference
// pipeline, and assert the truth falls inside the reported support
// interval (slackened by a calibrated factor — the intervals are
// asymptotic 95% approximations and the runs are deliberately small) for
// every seed of a sweep. This is the validation methodology of
// simulation-calibrated samplers (Chen & Xie's PMCMC coalescent sampler,
// the sts SMC sampler): correctness of the whole chain of simulator,
// sampler, relative-likelihood curve and maximizer — not just code
// coverage. New scenarios should land with a recovery test here (see
// README "Testing & statistical QA").
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "coalescent/growth.h"
#include "coalescent/simulator.h"
#include "coalescent/structured.h"
#include "core/driver.h"
#include "core/growth_estimator.h"
#include "core/smc_estimator.h"
#include "core/structured_estimator.h"
#include "rng/mt19937.h"
#include "rng/splitmix.h"
#include "seq/dataset.h"
#include "seq/seqgen.h"
#include "seq/subst_model.h"

namespace mpcgs {
namespace {

/// Slack factor applied to support-interval bounds: the truth must lie in
/// [lower / kSlack, upper * kSlack]. Calibrated so the fixed seeds pass
/// with margin while a broken pipeline (wrong prior, wrong curve, wrong
/// maximizer) still fails decisively.
constexpr double kSlack = 1.5;

Alignment simulateAlignment(const Genealogy& g, std::size_t length, Mt19937& rng) {
    SeqGenOptions so;
    so.length = length;
    const auto model = makeF84(2.0, kUniformFreqs);
    return simulateSequences(g, *model, so, rng);
}

void expectInsideSlackened(double truth, double lower, double upper, double slack,
                           const std::string& what) {
    EXPECT_GE(truth, lower / slack) << what << ": truth below support interval ["
                                    << lower << ", " << upper << "]";
    EXPECT_LE(truth, upper * slack) << what << ": truth above support interval ["
                                    << lower << ", " << upper << "]";
}

TEST(StatisticalQaTest, SinglePopulationThetaIsRecoveredAcrossSeeds) {
    const double thetaTrue = 1.0;
    for (const unsigned seed : {11u, 22u, 33u}) {
        Mt19937 rng(seed);
        const Genealogy g = simulateCoalescent(8, thetaTrue, rng);
        const Alignment aln = simulateAlignment(g, 500, rng);

        MpcgsOptions opts;
        opts.theta0 = 0.5;  // start away from the truth
        opts.emIterations = 3;
        opts.samplesPerIteration = 1500;
        opts.strategy = Strategy::MultiChain;
        opts.chains = 2;
        opts.seed = seed * 1000 + 1;
        const MpcgsResult res = estimateTheta(aln, opts);

        const PooledRelativeLikelihood rl = finalPooledLikelihood(res);
        const SupportInterval si = supportInterval(rl, res.theta);
        expectInsideSlackened(thetaTrue, si.lower, si.upper, kSlack,
                              "single-pop seed " + std::to_string(seed));
    }
}

TEST(StatisticalQaTest, MultiLocusPooledThetaIsRecovered) {
    const double thetaTrue = 1.0;
    for (const unsigned seed : {5u, 6u}) {
        Dataset ds;
        Mt19937 rng(seed);
        for (int l = 0; l < 4; ++l) {
            const Genealogy g = simulateCoalescent(6, thetaTrue, rng);
            ds.add(Locus{"locus" + std::to_string(l), simulateAlignment(g, 250, rng), 1.0});
        }

        MpcgsOptions opts;
        opts.theta0 = 2.0;
        opts.emIterations = 3;
        opts.samplesPerIteration = 800;  // per locus; pooled M-step sees 4x
        opts.strategy = Strategy::MultiChain;
        opts.chains = 2;
        opts.seed = seed * 1000 + 7;
        const MpcgsResult res = estimateTheta(ds, opts);

        const PooledRelativeLikelihood rl = finalPooledLikelihood(res);
        const SupportInterval si = supportInterval(rl, res.theta);
        // Pooling four loci tightens the interval; the truth must survive
        // the tighter bound too.
        expectInsideSlackened(thetaTrue, si.lower, si.upper, kSlack,
                              "multi-locus seed " + std::to_string(seed));
    }
}

TEST(StatisticalQaTest, GrowthModelRecoversThetaAndGrowthRegime) {
    // Simulate under a growing population and jointly estimate (theta, g).
    // Growth is weakly identified from one locus, so the assertion is the
    // regime (clearly positive growth, not runaway) plus theta recovery.
    const GrowthParams truth{1.0, 4.0};
    for (const unsigned seed : {3u, 9u}) {
        Mt19937 rng(seed);
        const Genealogy g = simulateGrowthCoalescent(8, truth, rng);
        const Alignment aln = simulateAlignment(g, 500, rng);

        GrowthEstimateOptions opts;
        opts.driving = GrowthParams{0.7, 0.0};  // start at no-growth
        opts.emIterations = 3;
        opts.samplesPerIteration = 1200;
        opts.seed = seed * 100 + 13;
        opts.growthHi = 30.0;
        const GrowthEstimateResult res = estimateThetaAndGrowth(aln, opts);

        EXPECT_GT(res.params.growth, 0.0) << "growth sign, seed " << seed;
        EXPECT_LT(res.params.growth, opts.growthHi) << "growth runaway, seed " << seed;
        EXPECT_GT(res.params.theta, truth.theta / 4.0) << "theta, seed " << seed;
        EXPECT_LT(res.params.theta, truth.theta * 4.0) << "theta, seed " << seed;
    }
}

TEST(StatisticalQaTest, SmcAndPmmhAgreeWithMcmcOnASharedSingleLocusDataset) {
    // Cross-paradigm QA: the SMC marginal-likelihood maximizer and the
    // PMMH posterior are estimators of the same theta as MCMC-EM, built on
    // entirely different integration machinery (particle clouds vs Markov
    // chains). On one shared dataset all three must land inside each
    // other's slackened support intervals — a disagreement means one
    // paradigm's weights, priors or curves are wrong.
    const double thetaTrue = 1.0;
    const unsigned seed = 17;
    Mt19937 rng(seed);
    const Genealogy g = simulateCoalescent(8, thetaTrue, rng);
    const Alignment aln = simulateAlignment(g, 500, rng);

    // MCMC-EM reference estimate + support interval.
    MpcgsOptions mcmcOpts;
    mcmcOpts.theta0 = 0.5;
    mcmcOpts.emIterations = 3;
    mcmcOpts.samplesPerIteration = 1500;
    mcmcOpts.strategy = Strategy::MultiChain;
    mcmcOpts.chains = 2;
    mcmcOpts.seed = seed * 1000 + 1;
    const MpcgsResult mcmc = estimateTheta(aln, mcmcOpts);
    const PooledRelativeLikelihood rl = finalPooledLikelihood(mcmc);
    const SupportInterval mcmcSi = supportInterval(rl, mcmc.theta);

    // SMC point estimate from the marginal-likelihood curve.
    SmcEstimateOptions smcOpts;
    smcOpts.theta0 = 0.5;
    smcOpts.smc.particles = 1024;
    smcOpts.seed = seed * 1000 + 2;
    const SmcEstimateResult smc = estimateThetaSmc(Dataset::single(aln), smcOpts);
    expectInsideSlackened(smc.theta, mcmcSi.lower, mcmcSi.upper, kSlack,
                          "SMC estimate vs MCMC interval");
    expectInsideSlackened(thetaTrue, smc.support.lower, smc.support.upper, kSlack,
                          "truth vs SMC interval");

    // PMMH posterior mean.
    PmmhEstimateOptions pmmhOpts;
    pmmhOpts.theta0 = 0.5;
    pmmhOpts.samples = 400;
    pmmhOpts.pmmh.chains = 2;
    pmmhOpts.pmmh.seed = seed * 1000 + 3;
    pmmhOpts.pmmh.smc.particles = 256;
    const PmmhEstimateResult pmmh = runPmmh(Dataset::single(aln), pmmhOpts);
    expectInsideSlackened(pmmh.posteriorMean, mcmcSi.lower, mcmcSi.upper, kSlack,
                          "PMMH posterior mean vs MCMC interval");
}

TEST(StatisticalQaTest, SmcAndPmmhAgreeWithMcmcOnASharedFourLocusDataset) {
    // The multi-locus variant: per-locus particle clouds summed into a
    // pooled logZ must agree with the pooled MCMC-EM curve.
    const double thetaTrue = 1.0;
    const unsigned seed = 8;
    Dataset ds;
    Mt19937 rng(seed);
    for (int l = 0; l < 4; ++l) {
        const Genealogy g = simulateCoalescent(6, thetaTrue, rng);
        ds.add(Locus{"locus" + std::to_string(l), simulateAlignment(g, 250, rng), 1.0});
    }

    MpcgsOptions mcmcOpts;
    mcmcOpts.theta0 = 2.0;
    mcmcOpts.emIterations = 3;
    mcmcOpts.samplesPerIteration = 800;
    mcmcOpts.strategy = Strategy::MultiChain;
    mcmcOpts.chains = 2;
    mcmcOpts.seed = seed * 1000 + 7;
    const MpcgsResult mcmc = estimateTheta(ds, mcmcOpts);
    const PooledRelativeLikelihood rl = finalPooledLikelihood(mcmc);
    const SupportInterval mcmcSi = supportInterval(rl, mcmc.theta);

    SmcEstimateOptions smcOpts;
    smcOpts.theta0 = 2.0;
    smcOpts.smc.particles = 1024;
    smcOpts.seed = seed * 1000 + 11;
    const SmcEstimateResult smc = estimateThetaSmc(ds, smcOpts);
    expectInsideSlackened(smc.theta, mcmcSi.lower, mcmcSi.upper, kSlack,
                          "4-locus SMC estimate vs MCMC interval");
    expectInsideSlackened(thetaTrue, smc.support.lower, smc.support.upper, kSlack,
                          "truth vs 4-locus SMC interval");

    PmmhEstimateOptions pmmhOpts;
    pmmhOpts.theta0 = 2.0;
    pmmhOpts.samples = 300;
    pmmhOpts.pmmh.chains = 2;
    pmmhOpts.pmmh.seed = seed * 1000 + 13;
    pmmhOpts.pmmh.smc.particles = 128;
    const PmmhEstimateResult pmmh = runPmmh(ds, pmmhOpts);
    expectInsideSlackened(pmmh.posteriorMean, mcmcSi.lower, mcmcSi.upper, kSlack,
                          "4-locus PMMH posterior mean vs MCMC interval");
}

TEST(StatisticalQaTest, TwoDemeStructuredParametersAreRecovered) {
    // The tentpole scenario: simulate two populations exchanging migrants,
    // infer (theta_1, theta_2, M_12, M_21), and require every true value
    // inside its slackened support interval. Migration rates are the
    // hardest parameters in the model — a single locus observes only a
    // handful of migration events, the reported intervals are conditional
    // (not profile) slices, and at low true rates the MLE can legitimately
    // collapse to 0 when the final sample set carries no events in one
    // direction. Truth M = 1.0 keeps the rates identified and the wider
    // migration slack absorbs the conditional-interval optimism (an
    // offline 6-seed sweep passes this criterion with margin; theta
    // coordinates pass at the raw interval on every seed).
    const MigrationModel truth(2, 1.0, 1.0);
    const std::vector<int> demes{0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 1};
    for (const unsigned seed : {2u, 6u}) {
        Mt19937 rng(seed);
        StructuredGenealogy g = simulateStructuredCoalescent(demes, truth, rng);
        const Alignment aln = simulateAlignment(g.tree(), 800, rng);

        StructuredOptions opts;
        opts.init = MigrationModel(2, 0.6, 0.4);  // start away from the truth
        opts.emIterations = 4;
        opts.samplesPerIteration = 3000;
        opts.chains = 2;
        opts.seed = seed * 1000 + 21;
        const StructuredResult res = estimateStructured(aln, demes, opts);

        for (int c = 0; c < structuredCoordinateCount(2); ++c) {
            const SupportInterval& si = res.support[static_cast<std::size_t>(c)];
            const double truthC = getStructuredCoordinate(truth, c);
            const bool isMigration = c >= 2;
            expectInsideSlackened(truthC, si.lower, si.upper,
                                  isMigration ? 5.0 : kSlack,
                                  structuredCoordinateName(2, c) + ", seed " +
                                      std::to_string(seed));
        }
    }
}

}  // namespace
}  // namespace mpcgs
