#include "seq/sequence.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace mpcgs {
namespace {

TEST(NucleotideTest, CharRoundTrip) {
    EXPECT_EQ(charToNuc('A'), kNucA);
    EXPECT_EQ(charToNuc('c'), kNucC);
    EXPECT_EQ(charToNuc('G'), kNucG);
    EXPECT_EQ(charToNuc('t'), kNucT);
    EXPECT_EQ(charToNuc('U'), kNucT);  // RNA alias
    EXPECT_EQ(charToNuc('N'), kNucUnknown);
    EXPECT_EQ(charToNuc('-'), kNucUnknown);
    EXPECT_EQ(charToNuc('?'), kNucUnknown);
    EXPECT_EQ(charToNuc('R'), kNucUnknown);  // IUPAC ambiguity
    EXPECT_EQ(charToNuc('Z'), 0xFF);
    EXPECT_EQ(charToNuc('1'), 0xFF);

    EXPECT_EQ(nucToChar(kNucA), 'A');
    EXPECT_EQ(nucToChar(kNucC), 'C');
    EXPECT_EQ(nucToChar(kNucG), 'G');
    EXPECT_EQ(nucToChar(kNucT), 'T');
    EXPECT_EQ(nucToChar(kNucUnknown), 'N');
}

TEST(NucleotideTest, PurinePyrimidineClasses) {
    EXPECT_TRUE(isPurine(kNucA));
    EXPECT_TRUE(isPurine(kNucG));
    EXPECT_FALSE(isPurine(kNucC));
    EXPECT_TRUE(isPyrimidine(kNucC));
    EXPECT_TRUE(isPyrimidine(kNucT));
    EXPECT_FALSE(isPyrimidine(kNucG));
}

TEST(SequenceTest, FromStringAndBack) {
    const auto s = Sequence::fromString("seq1", "ACGTNacgt");
    EXPECT_EQ(s.name(), "seq1");
    EXPECT_EQ(s.length(), 9u);
    EXPECT_EQ(s.toString(), "ACGTNACGT");
}

TEST(SequenceTest, RejectsInvalidCharacters) {
    EXPECT_THROW(Sequence::fromString("bad", "ACGZ"), ParseError);
}

TEST(SequenceTest, HammingDistanceSkipsUnknowns) {
    const auto a = Sequence::fromString("a", "ACGTA");
    const auto b = Sequence::fromString("b", "ACCTN");
    // Position 2 differs; position 4 is unknown in b and does not count.
    EXPECT_EQ(a.hammingDistance(b), 1u);
    EXPECT_EQ(b.hammingDistance(a), 1u);
    EXPECT_EQ(a.hammingDistance(a), 0u);
}

TEST(SequenceTest, HammingThrowsOnLengthMismatch) {
    const auto a = Sequence::fromString("a", "ACGT");
    const auto b = Sequence::fromString("b", "ACG");
    EXPECT_THROW(a.hammingDistance(b), InvariantError);
}

TEST(PackedAlignmentTest, RoundTripsCodes) {
    std::vector<Sequence> seqs{Sequence::fromString("a", "ACGTACGTACGTACGTACGTACGTACGTACGTACG"),
                               Sequence::fromString("b", "TTTTGGGGCCCCAAAANNNNACGTACGTACGTACG")};
    const PackedAlignment packed(seqs);
    EXPECT_EQ(packed.sequenceCount(), 2u);
    EXPECT_EQ(packed.length(), 35u);
    for (std::size_t s = 0; s < 2; ++s)
        for (std::size_t i = 0; i < 35; ++i) EXPECT_EQ(packed.at(s, i), seqs[s].at(i));
}

TEST(PackedAlignmentTest, WordLayoutPacksTwoBits) {
    // 32 'C's = code 1 in every 2-bit slot = 0x5555...
    std::vector<Sequence> seqs{Sequence::fromString("c", std::string(32, 'C'))};
    const PackedAlignment packed(seqs);
    EXPECT_EQ(packed.wordsPerSequence(), 1u);
    EXPECT_EQ(packed.word(0, 0), 0x5555555555555555ull);
}

TEST(PackedAlignmentTest, RejectsRaggedInput) {
    std::vector<Sequence> seqs{Sequence::fromString("a", "ACGT"),
                               Sequence::fromString("b", "AC")};
    EXPECT_THROW(PackedAlignment{seqs}, InvariantError);
}

}  // namespace
}  // namespace mpcgs
