// Unified sampler runtime: sink pipeline, chain scheduling determinism,
// convergence-driven stopping, and end-to-end thread-count invariance of
// the ensemble strategies through estimateTheta.
#include "core/samplers.h"

#include <cmath>

#include <gtest/gtest.h>

#include "coalescent/simulator.h"
#include "core/driver.h"
#include "mcmc/multichain.h"
#include "mcmc/schedule.h"
#include "rng/splitmix.h"
#include "seq/seqgen.h"
#include "seq/subst_model.h"

namespace mpcgs {
namespace {

Alignment simulateData(int n, double theta, std::size_t length, unsigned seed) {
    Mt19937 rng(seed);
    const Genealogy g = simulateCoalescent(n, theta, rng);
    const auto model = makeF84(2.0, kUniformFreqs);
    return simulateSequences(g, *model, {length, 1.0}, rng);
}

MpcgsOptions quickOptions(Strategy strategy) {
    MpcgsOptions o;
    o.theta0 = 0.3;
    o.emIterations = 2;
    o.samplesPerIteration = 800;
    o.strategy = strategy;
    o.gmhProposals = 8;
    o.gmhSamplesPerSet = 8;
    o.chains = 4;
    o.seed = 77;
    return o;
}

void expectIdenticalResults(const MpcgsResult& a, const MpcgsResult& b) {
    EXPECT_DOUBLE_EQ(a.theta, b.theta);
    ASSERT_EQ(a.finalSummaries.size(), b.finalSummaries.size());
    for (std::size_t i = 0; i < a.finalSummaries.size(); ++i) {
        EXPECT_DOUBLE_EQ(a.finalSummaries[i].weightedSum, b.finalSummaries[i].weightedSum);
        EXPECT_EQ(a.finalSummaries[i].events, b.finalSummaries[i].events);
    }
    ASSERT_EQ(a.history.size(), b.history.size());
    for (std::size_t i = 0; i < a.history.size(); ++i) {
        EXPECT_DOUBLE_EQ(a.history[i].thetaAfter, b.history[i].thetaAfter);
        EXPECT_EQ(a.history[i].samples, b.history[i].samples);
        EXPECT_DOUBLE_EQ(a.history[i].moveRate, b.history[i].moveRate);
    }
}

TEST(SamplerRuntimeTest, MultiChainIsThreadCountInvariant) {
    const Alignment aln = simulateData(8, 1.0, 250, 31);
    const MpcgsOptions o = quickOptions(Strategy::MultiChain);
    const MpcgsResult serial = estimateTheta(aln, o, nullptr);
    ThreadPool pool4(4);
    const MpcgsResult par4 = estimateTheta(aln, o, &pool4);
    ThreadPool pool8(8);
    const MpcgsResult par8 = estimateTheta(aln, o, &pool8);
    expectIdenticalResults(serial, par4);
    expectIdenticalResults(serial, par8);
}

TEST(SamplerRuntimeTest, HeatedMhIsThreadCountInvariant) {
    const Alignment aln = simulateData(8, 1.0, 250, 32);
    MpcgsOptions o = quickOptions(Strategy::HeatedMh);
    o.samplesPerIteration = 600;
    const MpcgsResult serial = estimateTheta(aln, o, nullptr);
    ThreadPool pool4(4);
    const MpcgsResult par4 = estimateTheta(aln, o, &pool4);
    ThreadPool pool8(8);
    const MpcgsResult par8 = estimateTheta(aln, o, &pool8);
    expectIdenticalResults(serial, par4);
    expectIdenticalResults(serial, par8);
}

TEST(SamplerRuntimeTest, SerialStrategiesStillDeterministic) {
    const Alignment aln = simulateData(7, 1.0, 200, 33);
    for (const Strategy s : {Strategy::Gmh, Strategy::SerialMh}) {
        const MpcgsOptions o = quickOptions(s);
        ThreadPool pool(6);
        expectIdenticalResults(estimateTheta(aln, o, nullptr), estimateTheta(aln, o, &pool));
    }
}

TEST(SamplerRuntimeTest, RunMultiChainStreamsTaggedSamplesDeterministically) {
    // The streamed (state, chain, index) calls carry per-chain order, and
    // the aggregate is identical for any pool width.
    struct Gaussian {
        using State = double;
        double logPosterior(const State& x) const { return -0.5 * x * x; }
        struct Proposal {
            State state;
            double logForward;
            double logReverse;
        };
        Proposal propose(const State& cur, Rng& rng) const {
            return Proposal{cur + rng.normal(0.0, 0.8), 0.0, 0.0};
        }
    };
    const Gaussian problem;
    MultiChainOptions opts;
    opts.chains = 4;
    opts.burnInPerChain = 50;
    opts.totalSamples = 1000;
    opts.seed = 5;
    const std::size_t perChain = multiChainSamplesPerChain(opts);

    const auto collect = [&](ThreadPool* pool) {
        std::vector<std::vector<double>> perChainOut(opts.chains);
        for (auto& v : perChainOut) v.resize(perChain);
        std::vector<std::vector<std::size_t>> indices(opts.chains);
        runMultiChain(
            problem, 0.0, opts,
            [&](const double& s, std::size_t chain, std::size_t index) {
                perChainOut[chain][index] = s;
                indices[chain].push_back(index);
            },
            pool);
        // Per-chain calls arrived in index order.
        for (const auto& idx : indices) {
            EXPECT_EQ(idx.size(), perChain);
            for (std::size_t i = 0; i < idx.size(); ++i) EXPECT_EQ(idx[i], i);
        }
        return perChainOut;
    };

    const auto serial = collect(nullptr);
    ThreadPool pool(4);
    const auto parallel = collect(&pool);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t c = 0; c < serial.size(); ++c)
        for (std::size_t i = 0; i < serial[c].size(); ++i)
            EXPECT_DOUBLE_EQ(serial[c][i], parallel[c][i]);

    // Distinct chains draw from distinct streams.
    EXPECT_NE(serial[0], serial[1]);
}

TEST(SamplerRuntimeTest, SummarySinkOrdersChainMajor) {
    SummarySink sink;
    sink.beginRun(3);
    Genealogy g(2);  // tag-only test; the sink reduces to intervals lazily
    g.node(2).child = {0, 1};
    g.node(2).time = 1.0;
    g.node(0).parent = 2;
    g.node(1).parent = 2;
    g.setRoot(2);
    // Interleaved arrival: chain 2 first, then 0, then 1.
    for (const std::uint32_t chain : {2u, 0u, 1u, 0u, 2u})
        sink.consume(g, SampleTag{chain, 0, 0.0});
    EXPECT_EQ(sink.total(), 5u);
    const auto out = sink.chainMajor();
    ASSERT_EQ(out.size(), 5u);  // chain 0: 2 entries, chain 1: 1, chain 2: 2
    for (const auto& s : out) EXPECT_EQ(s.events, 1);
}

TEST(SamplerRuntimeTest, ConvergenceMonitorRhatAndEss) {
    ConvergenceMonitor m;
    m.beginRun(2);
    Genealogy g(2);
    Mt19937 rng(9);
    // Two chains sampling the same distribution: R-hat ~ 1.
    for (std::uint64_t i = 0; i < 500; ++i) {
        m.consume(g, SampleTag{0, i, rng.normal(0.0, 1.0)});
        m.consume(g, SampleTag{1, i, rng.normal(0.0, 1.0)});
    }
    EXPECT_LT(m.rhat(), 1.05);
    EXPECT_GT(m.pooledEss(), 100.0);
    EXPECT_EQ(m.minChainLength(), 500u);
    EXPECT_EQ(m.totalSamples(), 1000u);

    // A far-away third chain blows R-hat up.
    ConvergenceMonitor bad;
    bad.beginRun(2);
    for (std::uint64_t i = 0; i < 500; ++i) {
        bad.consume(g, SampleTag{0, i, rng.normal(0.0, 1.0)});
        bad.consume(g, SampleTag{1, i, rng.normal(50.0, 1.0)});
    }
    EXPECT_GT(bad.rhat(), 5.0);
}

TEST(SamplerRuntimeTest, StoppingRuleRequiresBothCriteria) {
    ConvergenceMonitor m;
    m.beginRun(1);
    Genealogy g(2);
    Mt19937 rng(10);
    for (std::uint64_t i = 0; i < 400; ++i) m.consume(g, SampleTag{0, i, rng.normal(0.0, 1.0)});

    StoppingRule off;
    EXPECT_FALSE(off.enabled());
    EXPECT_FALSE(off.satisfied(m));

    StoppingRule loose;
    loose.rhatBelow = 1.5;
    loose.essAtLeast = 10.0;
    EXPECT_TRUE(loose.enabled());
    EXPECT_TRUE(loose.satisfied(m));

    StoppingRule impossibleEss = loose;
    impossibleEss.essAtLeast = 1e9;
    EXPECT_FALSE(impossibleEss.satisfied(m));

    StoppingRule tooEarly = loose;
    tooEarly.minSamplesPerChain = 1000;
    EXPECT_FALSE(tooEarly.satisfied(m));
}

TEST(SamplerRuntimeTest, ConvergenceStoppingEndsEstepEarly) {
    const Alignment aln = simulateData(8, 1.0, 200, 34);
    MpcgsOptions o = quickOptions(Strategy::MultiChain);
    o.emIterations = 1;
    o.samplesPerIteration = 4000;
    o.stopRhat = 2.0;   // generous thresholds: fire at the first check
    o.stopEss = 20.0;
    ThreadPool pool(4);
    const MpcgsResult res = estimateTheta(aln, o, &pool);
    ASSERT_EQ(res.history.size(), 1u);
    EXPECT_TRUE(res.history[0].stoppedEarly);
    EXPECT_LT(res.history[0].samples, o.samplesPerIteration);
    EXPECT_GT(res.history[0].rhat, 0.0);
    EXPECT_GT(res.history[0].ess, 0.0);
    EXPECT_GT(res.theta, 0.0);

    // Unreachable thresholds: the run uses the full cap.
    MpcgsOptions capped = o;
    capped.stopRhat = 1e-9;
    const MpcgsResult full = estimateTheta(aln, capped, &pool);
    EXPECT_FALSE(full.history[0].stoppedEarly);
    EXPECT_GE(full.history[0].samples, capped.samplesPerIteration);
}

TEST(SamplerRuntimeTest, StoppingReachableForSingleChainStrategies) {
    // One chain falls back to split-R-hat, so the rule still fires.
    const Alignment aln = simulateData(6, 1.0, 150, 35);
    MpcgsOptions o = quickOptions(Strategy::SerialMh);
    o.emIterations = 1;
    o.samplesPerIteration = 4000;
    o.stopRhat = 3.0;
    o.stopEss = 5.0;
    const MpcgsResult res = estimateTheta(aln, o);
    EXPECT_TRUE(res.history[0].stoppedEarly);
    EXPECT_LT(res.history[0].samples, o.samplesPerIteration);
}

TEST(SamplerRuntimeTest, ChainSchedulerRoundsAreDeterministic) {
    // Chains mutate only their own slot; serial and pooled execution agree.
    const auto run = [](ThreadPool* pool) {
        ChainScheduler sched(pool, 8);
        std::vector<std::uint64_t> state(8);
        for (std::size_t c = 0; c < 8; ++c) state[c] = splitMix64At(123, c);
        std::uint64_t barriers = 0;
        for (int round = 0; round < 100; ++round)
            sched.round([&](std::size_t c) { state[c] = splitMix64Mix(state[c] + c); },
                        [&] { ++barriers; });
        EXPECT_EQ(barriers, 100u);
        return state;
    };
    ThreadPool pool(4);
    EXPECT_EQ(run(nullptr), run(&pool));
}

TEST(SamplerRuntimeTest, MakeSamplerBuildsEveryStrategy) {
    const Alignment aln = simulateData(6, 1.0, 120, 36);
    const F81Model model(aln.baseFrequencies());
    const DataLikelihood lik(aln, model);
    const Genealogy init = initialGenealogy(aln, 1.0);

    for (const Strategy s :
         {Strategy::Gmh, Strategy::SerialMh, Strategy::MultiChain, Strategy::HeatedMh}) {
        SamplerSpec spec;
        spec.strategy = s;
        spec.seed = 3;
        spec.chains = 3;
        spec.gmhProposals = 4;
        spec.gmhSamplesPerSet = 4;
        auto sampler = makeSampler(spec, lik, 1.0, init, nullptr);
        SummarySink sink;
        ConvergenceMonitor monitor;
        SamplerRun::Config cfg;
        cfg.burnInTicks = 5;
        cfg.sampleTicks = 10;
        SamplerRun run(*sampler, cfg);
        const SamplerRunReport report = run.execute(sink, monitor);
        EXPECT_EQ(report.ticks, 10u);
        EXPECT_EQ(report.samples, 10u * sampler->samplesPerTick());
        EXPECT_EQ(sink.total(), report.samples);
        EXPECT_GT(sampler->stats().steps, 0u);
        EXPECT_NO_THROW(sampler->continuation().validate());
    }
}

}  // namespace
}  // namespace mpcgs
