#include "par/thread_pool.h"

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "par/kernel.h"
#include "util/logspace.h"

namespace mpcgs {
namespace {

TEST(ThreadPoolTest, SizeIncludesCaller) {
    ThreadPool serial(1);
    EXPECT_EQ(serial.size(), 1u);
    ThreadPool four(4);
    EXPECT_EQ(four.size(), 4u);
}

TEST(ThreadPoolTest, ParallelForVisitsEveryIndexOnce) {
    ThreadPool pool(4);
    const std::size_t n = 10000;
    std::vector<std::atomic<int>> hits(n);
    pool.parallelFor(n, [&](std::size_t i) { hits[i].fetch_add(1); });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, SerialPoolVisitsEveryIndex) {
    ThreadPool pool(1);
    std::vector<int> hits(257, 0);
    pool.parallelFor(hits.size(), [&](std::size_t i) { hits[i]++; });
    for (const int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPoolTest, EmptyRangeIsNoop) {
    ThreadPool pool(4);
    bool called = false;
    pool.parallelFor(0, [&](std::size_t) { called = true; });
    EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, SlotsAreWithinBounds) {
    ThreadPool pool(3);
    std::atomic<bool> ok{true};
    pool.parallelForSlot(5000, [&](std::size_t, unsigned slot) {
        if (slot >= pool.size()) ok = false;
    });
    EXPECT_TRUE(ok);
}

TEST(ThreadPoolTest, SlotsDoNotCollideConcurrently) {
    ThreadPool pool(4);
    std::vector<std::atomic<int>> inUse(pool.size());
    std::atomic<bool> collision{false};
    pool.parallelForSlot(20000, [&](std::size_t, unsigned slot) {
        if (inUse[slot].fetch_add(1) != 0) collision = true;
        inUse[slot].fetch_sub(1);
    });
    EXPECT_FALSE(collision);
}

TEST(ThreadPoolTest, ExceptionPropagates) {
    ThreadPool pool(4);
    EXPECT_THROW(pool.parallelFor(1000,
                                  [&](std::size_t i) {
                                      if (i == 567) throw std::runtime_error("boom");
                                  }),
                 std::runtime_error);
    // Pool remains usable afterwards.
    std::atomic<int> count{0};
    pool.parallelFor(100, [&](std::size_t) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, ReduceSumsCorrectly) {
    ThreadPool pool(4);
    const double sum = pool.parallelReduce(
        1000, 0.0, [](std::size_t i) { return static_cast<double>(i); },
        [](double a, double b) { return a + b; });
    EXPECT_DOUBLE_EQ(sum, 999.0 * 1000.0 / 2.0);
}

TEST(ThreadPoolTest, ReduceMax) {
    ThreadPool pool(4);
    const double m = pool.parallelReduce(
        777, -1e300, [](std::size_t i) { return static_cast<double>((i * 37) % 1000); },
        [](double a, double b) { return a > b ? a : b; });
    double expect = -1e300;
    for (std::size_t i = 0; i < 777; ++i)
        expect = std::max(expect, static_cast<double>((i * 37) % 1000));
    EXPECT_DOUBLE_EQ(m, expect);
}

TEST(ThreadPoolTest, BackToBackBatches) {
    ThreadPool pool(4);
    for (int round = 0; round < 50; ++round) {
        std::atomic<int> count{0};
        pool.parallelFor(100, [&](std::size_t) { count.fetch_add(1); });
        ASSERT_EQ(count.load(), 100);
    }
}

TEST(ForEachIndexTest, NullPoolRunsSerially) {
    std::vector<int> hits(100, 0);
    forEachIndex(nullptr, hits.size(), [&](std::size_t i) { hits[i]++; });
    for (const int h : hits) EXPECT_EQ(h, 1);
}

// --- stress & safety ---------------------------------------------------------

TEST(ThreadPoolTest, NestedLaunchRunsSeriallyInline) {
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(64 * 32);
    std::atomic<int> nestedInside{0};
    pool.parallelFor(64, [&](std::size_t outer) {
        EXPECT_TRUE(pool.insideLaunch());
        // A launch from inside a launch must degrade to a serial inline
        // loop instead of corrupting the in-flight launch slot.
        pool.parallelFor(32, [&](std::size_t inner) {
            nestedInside.fetch_add(1);
            hits[outer * 32 + inner].fetch_add(1);
        });
    });
    EXPECT_FALSE(pool.insideLaunch());
    EXPECT_EQ(nestedInside.load(), 64 * 32);
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, NestedReduceInsideLaunch) {
    // Nested reduces fold into function-local accumulators: many outer
    // indices reduce concurrently, and every one must see an exact result
    // (a regression here means the shared per-slot partials leaked into
    // the nested path — a data race TSAN flags deterministically).
    ThreadPool pool(4);
    std::vector<double> out(256, 0.0);
    pool.parallelFor(out.size(), [&](std::size_t i) {
        out[i] = pool.parallelReduce(
            100, 0.0, [](std::size_t j) { return static_cast<double>(j); },
            [](double a, double b) { return a + b; });
    });
    for (const double v : out) EXPECT_DOUBLE_EQ(v, 4950.0);
}

TEST(ThreadPoolTest, ConcurrentExternalReduces) {
    // Reduces submitted from distinct external threads serialize on the
    // launch mutex for the full reset/launch/fold sequence; neither may
    // corrupt the other's per-slot partials.
    ThreadPool pool(4);
    std::atomic<bool> go{false};
    std::vector<double> results(4, 0.0);
    std::vector<std::thread> callers;
    for (std::size_t t = 0; t < results.size(); ++t) {
        callers.emplace_back([&, t] {
            while (!go.load()) std::this_thread::yield();
            for (int round = 0; round < 50; ++round) {
                results[t] = pool.parallelReduce(
                    1000, 0.0, [](std::size_t j) { return static_cast<double>(j); },
                    [](double a, double b) { return a + b; });
                EXPECT_DOUBLE_EQ(results[t], 999.0 * 1000.0 / 2.0);
            }
        });
    }
    go.store(true);
    for (auto& c : callers) c.join();
    for (const double v : results) EXPECT_DOUBLE_EQ(v, 999.0 * 1000.0 / 2.0);
}

TEST(ThreadPoolTest, ExceptionUnderContention) {
    // Every index throws: many workers race to record the error; exactly
    // one exception must propagate and the pool must stay healthy.
    ThreadPool pool(8);
    for (int round = 0; round < 20; ++round) {
        EXPECT_THROW(
            pool.parallelFor(512, [](std::size_t i) {
                throw std::runtime_error("boom " + std::to_string(i));
            }),
            std::runtime_error);
        std::atomic<int> count{0};
        pool.parallelFor(256, [&](std::size_t) { count.fetch_add(1); });
        ASSERT_EQ(count.load(), 256);
    }
}

TEST(ThreadPoolTest, RapidSmallLaunches) {
    // Launch overhead path: thousands of tiny back-to-back grids, the shape
    // of per-proposal and per-coalescence launches during sampling.
    ThreadPool pool(4);
    std::uint64_t checksum = 0;
    for (int round = 0; round < 20000; ++round) {
        const std::size_t n = 2 + static_cast<std::size_t>(round % 7);
        std::atomic<std::uint64_t> sum{0};
        pool.parallelFor(n, [&](std::size_t i) { sum.fetch_add(i + 1); }, 1);
        checksum += sum.load();
        ASSERT_EQ(sum.load(), n * (n + 1) / 2);
    }
    EXPECT_GT(checksum, 0u);
}

TEST(ThreadPoolTest, OversubscribedPoolIsCorrect) {
    // Pool much wider than the hardware: surplus workers park; correctness
    // and exception handling must be unaffected.
    ThreadPool pool(4 * hardwareThreads());
    std::vector<std::atomic<int>> hits(20000);
    pool.parallelFor(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
    for (const auto& h : hits) ASSERT_EQ(h.load(), 1);
    const double sum = pool.parallelReduce(
        1000, 0.0, [](std::size_t i) { return static_cast<double>(i); },
        [](double a, double b) { return a + b; });
    EXPECT_DOUBLE_EQ(sum, 999.0 * 1000.0 / 2.0);
    EXPECT_THROW(pool.parallelFor(100,
                                  [](std::size_t i) {
                                      if (i == 50) throw std::runtime_error("x");
                                  }),
                 std::runtime_error);
}

// Bitwise thread-count invariance across launch shapes: chunk-indexed
// outputs must be identical for any pool width, for every launch entry
// point the stack uses.
TEST(ThreadPoolTest, BitwiseInvarianceAcrossWidths) {
    const std::size_t n = 4097;
    const auto runAll = [n](unsigned width) {
        ThreadPool pool(width);
        std::vector<double> viaFor(n), viaSlot(n), viaBlocked(n), viaChains(8);
        pool.parallelFor(n, [&](std::size_t i) {
            viaFor[i] = std::sin(static_cast<double>(i) * 0.7) * 3.0;
        });
        pool.parallelForSlot(n, [&](std::size_t i, unsigned) {
            viaSlot[i] = std::cos(static_cast<double>(i) * 1.3);
        });
        launchBlocked(&pool, n, 64, [&](std::size_t, std::size_t lo, std::size_t hi) {
            for (std::size_t i = lo; i < hi; ++i)
                viaBlocked[i] = std::sin(static_cast<double>(i)) * 0.5 + 1.0;
        });
        launchChains(&pool, viaChains.size(), [&](std::size_t c) {
            double acc = static_cast<double>(c) + 0.5;
            for (int k = 0; k < 100; ++k) acc = acc * 0.99 + std::cos(acc);
            viaChains[c] = acc;
        });
        std::vector<double> blockRed;
        for (const std::size_t bd : {1u, 3u, 64u, 1024u}) {
            blockRed.push_back(blockReduceAdd(&pool, viaFor, bd));
            blockRed.push_back(blockReduceLogSumExp(&pool, viaBlocked, bd));
            blockRed.push_back(blockReduceMax(&pool, viaSlot, bd));
        }
        std::vector<double> all;
        for (const auto* v : {&viaFor, &viaSlot, &viaBlocked, &viaChains, &blockRed})
            all.insert(all.end(), v->begin(), v->end());
        return all;
    };
    const auto ref = runAll(1);
    for (const unsigned width : {2u, 4u, 8u}) {
        const auto got = runAll(width);
        ASSERT_EQ(got.size(), ref.size());
        for (std::size_t i = 0; i < ref.size(); ++i)
            ASSERT_EQ(got[i], ref[i]) << "width " << width << " index " << i;
    }
}

// --- kernel facade -----------------------------------------------------------

TEST(KernelTest, LaunchCoversGrid) {
    ThreadPool pool(4);
    LaunchConfig cfg{8, 32};
    std::vector<std::atomic<int>> hits(cfg.totalThreads());
    launchKernel(&pool, cfg, [&](const ThreadIdx& idx) {
        EXPECT_EQ(idx.global, idx.block * 32 + idx.thread);
        hits[idx.global].fetch_add(1);
    });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(KernelTest, BlockReduceAddMatchesSerial) {
    ThreadPool pool(4);
    std::vector<double> v(1237);
    for (std::size_t i = 0; i < v.size(); ++i) v[i] = std::sin(static_cast<double>(i));
    const double expect = std::accumulate(v.begin(), v.end(), 0.0);
    EXPECT_NEAR(blockReduceAdd(&pool, v, 64), expect, 1e-9);
    EXPECT_NEAR(blockReduceAdd(nullptr, v, 64), expect, 1e-9);
}

TEST(KernelTest, BlockReduceAddEmpty) {
    EXPECT_DOUBLE_EQ(blockReduceAdd(nullptr, {}, 32), 0.0);
}

TEST(KernelTest, BlockReduceLogSumExpMatchesDirect) {
    ThreadPool pool(4);
    std::vector<double> v(513);
    for (std::size_t i = 0; i < v.size(); ++i)
        v[i] = -1000.0 + 0.5 * static_cast<double>(i % 97);
    EXPECT_NEAR(blockReduceLogSumExp(&pool, v, 32), logSumExp(v), 1e-10);
}

TEST(KernelTest, BlockReduceMaxMatchesDirect) {
    ThreadPool pool(4);
    std::vector<double> v{3.0, -1.0, 7.5, 2.0, 7.4999};
    EXPECT_DOUBLE_EQ(blockReduceMax(&pool, v, 2), 7.5);
}

// Parameterized sweep: all reductions agree with serial references across
// block sizes.
class BlockSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BlockSizeSweep, ReductionsConsistent) {
    ThreadPool pool(4);
    const std::size_t blockDim = GetParam();
    std::vector<double> v(301);
    for (std::size_t i = 0; i < v.size(); ++i)
        v[i] = std::cos(static_cast<double>(i) * 0.37) * 3.0 - 1.0;
    const double sum = std::accumulate(v.begin(), v.end(), 0.0);
    EXPECT_NEAR(blockReduceAdd(&pool, v, blockDim), sum, 1e-10);
    EXPECT_NEAR(blockReduceLogSumExp(&pool, v, blockDim), logSumExp(v), 1e-10);
    EXPECT_NEAR(blockReduceMax(&pool, v, blockDim), *std::max_element(v.begin(), v.end()),
                1e-15);
}

INSTANTIATE_TEST_SUITE_P(BlockSizes, BlockSizeSweep,
                         ::testing::Values(1u, 2u, 3u, 32u, 256u, 1024u));

}  // namespace
}  // namespace mpcgs
