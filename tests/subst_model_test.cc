#include "seq/subst_model.h"

#include <cmath>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "util/error.h"

namespace mpcgs {
namespace {

const BaseFreqs kSkewed{0.35, 0.15, 0.2, 0.3};

std::vector<std::unique_ptr<SubstModel>> allModels() {
    std::vector<std::unique_ptr<SubstModel>> ms;
    ms.push_back(std::make_unique<F81Model>(kSkewed));
    ms.push_back(makeJc69());
    ms.push_back(makeK80(2.5));
    ms.push_back(makeHky85(2.5, kSkewed));
    ms.push_back(makeF84(1.5, kSkewed));
    ms.push_back(makeGtr({1.0, 2.0, 0.5, 0.7, 3.0, 1.2}, kSkewed));
    return ms;
}

class AllModels : public ::testing::TestWithParam<double> {};

TEST_P(AllModels, RowsSumToOne) {
    const double t = GetParam();
    for (const auto& m : allModels()) {
        const Matrix4 p = m->transition(t);
        EXPECT_LT(p.rowSumError(), 1e-10) << m->name() << " t=" << t;
        for (std::size_t i = 0; i < 4; ++i)
            for (std::size_t j = 0; j < 4; ++j)
                EXPECT_GE(p(i, j), 0.0) << m->name() << " entry " << i << "," << j;
    }
}

TEST_P(AllModels, ChapmanKolmogorov) {
    const double t = GetParam();
    for (const auto& m : allModels()) {
        const Matrix4 whole = m->transition(2.0 * t);
        const Matrix4 halves = m->transition(t) * m->transition(t);
        EXPECT_LT(whole.maxAbsDiff(halves), 1e-9) << m->name() << " t=" << t;
    }
}

TEST_P(AllModels, DetailedBalance) {
    const double t = GetParam();
    for (const auto& m : allModels()) {
        const Matrix4 p = m->transition(t);
        const BaseFreqs& pi = m->stationary();
        for (std::size_t i = 0; i < 4; ++i)
            for (std::size_t j = 0; j < 4; ++j)
                EXPECT_NEAR(pi[i] * p(i, j), pi[j] * p(j, i), 1e-10)
                    << m->name() << " pair " << i << "," << j;
    }
}

INSTANTIATE_TEST_SUITE_P(BranchLengths, AllModels,
                         ::testing::Values(0.001, 0.01, 0.1, 0.5, 1.0, 5.0));

TEST(SubstModelTest, ZeroTimeIsIdentity) {
    for (const auto& m : allModels())
        EXPECT_LT(m->transition(0.0).maxAbsDiff(Matrix4::identity()), 1e-12) << m->name();
}

TEST(SubstModelTest, LongTimeReachesStationarity) {
    for (const auto& m : allModels()) {
        const Matrix4 p = m->transition(500.0);
        const BaseFreqs& pi = m->stationary();
        for (std::size_t i = 0; i < 4; ++i)
            for (std::size_t j = 0; j < 4; ++j)
                EXPECT_NEAR(p(i, j), pi[j], 1e-8) << m->name();
    }
}

TEST(SubstModelTest, NormalizedModelsHaveUnitMeanRate) {
    EXPECT_NEAR(makeJc69()->meanRate(), 1.0, 1e-12);
    EXPECT_NEAR(makeK80(3.0)->meanRate(), 1.0, 1e-12);
    EXPECT_NEAR(makeHky85(3.0, kSkewed)->meanRate(), 1.0, 1e-12);
    EXPECT_NEAR(makeF84(1.0, kSkewed)->meanRate(), 1.0, 1e-12);
}

TEST(SubstModelTest, F81MatchesEq20Verbatim) {
    // Eq. 20: P_XY(t) = e^{-ut} delta + (1 - e^{-ut}) pi_Y.
    const double u = 1.7, t = 0.42;
    const F81Model m(kSkewed, u);
    const Matrix4 p = m.transition(t);
    const double e = std::exp(-u * t);
    for (std::size_t x = 0; x < 4; ++x)
        for (std::size_t y = 0; y < 4; ++y) {
            const double expect = (x == y ? e : 0.0) + (1.0 - e) * kSkewed[y];
            EXPECT_NEAR(p(x, y), expect, 1e-14);
        }
}

TEST(SubstModelTest, F81EqualsGtrWithUniformExchangeabilities) {
    // F81 with u=1 equals unnormalized GTR with all exchangeabilities 1.
    const F81Model analytic(kSkewed, 1.0);
    const auto spectral = makeGtr({1, 1, 1, 1, 1, 1}, kSkewed, /*normalize=*/false);
    for (const double t : {0.05, 0.3, 1.2}) {
        EXPECT_LT(analytic.transition(t).maxAbsDiff(spectral->transition(t)), 1e-10);
    }
}

TEST(SubstModelTest, F84WithZeroKappaIsF81Shape) {
    // kappa = 0 removes the within-class boost; after normalization F84
    // equals normalized F81 (= normalized uniform-exchangeability GTR).
    const auto f84 = makeF84(0.0, kSkewed);
    const auto f81norm = makeGtr({1, 1, 1, 1, 1, 1}, kSkewed, /*normalize=*/true);
    for (const double t : {0.1, 0.7}) {
        EXPECT_LT(f84->transition(t).maxAbsDiff(f81norm->transition(t)), 1e-10);
    }
}

TEST(SubstModelTest, K80IsHkyWithUniformFreqs) {
    const auto k80 = makeK80(4.0);
    const auto hky = makeHky85(4.0, kUniformFreqs);
    for (const double t : {0.1, 1.0}) {
        EXPECT_LT(k80->transition(t).maxAbsDiff(hky->transition(t)), 1e-12);
    }
}

TEST(SubstModelTest, K80TransitionsExceedTransversions) {
    const Matrix4 p = makeK80(5.0)->transition(0.2);
    // A->G (transition) should be more probable than A->C (transversion).
    EXPECT_GT(p(kNucA, kNucG), p(kNucA, kNucC));
    EXPECT_GT(p(kNucC, kNucT), p(kNucC, kNucG));
}

TEST(SubstModelTest, JcClosedForm) {
    // JC69 (normalized): P_same = 1/4 + 3/4 e^{-4t/3}.
    const auto jc = makeJc69();
    for (const double t : {0.05, 0.2, 1.0}) {
        const Matrix4 p = jc->transition(t);
        const double same = 0.25 + 0.75 * std::exp(-4.0 * t / 3.0);
        const double diff = 0.25 - 0.25 * std::exp(-4.0 * t / 3.0);
        EXPECT_NEAR(p(0, 0), same, 1e-10);
        EXPECT_NEAR(p(0, 1), diff, 1e-10);
    }
}

TEST(SubstModelTest, RateMatrixRowsSumToZero) {
    for (const auto& m : allModels()) {
        const Matrix4 q = m->rateMatrix();
        for (std::size_t i = 0; i < 4; ++i) {
            double s = 0.0;
            for (std::size_t j = 0; j < 4; ++j) s += q(i, j);
            EXPECT_NEAR(s, 0.0, 1e-10) << m->name();
        }
    }
}

TEST(SubstModelTest, CloneIsIndependentAndEqual) {
    const auto m = makeHky85(2.0, kSkewed);
    const auto c = m->clone();
    EXPECT_EQ(c->name(), m->name());
    EXPECT_LT(c->transition(0.3).maxAbsDiff(m->transition(0.3)), 1e-15);
}

TEST(SubstModelTest, RejectsBadInputs) {
    EXPECT_THROW(F81Model({0.5, 0.5, 0.0, 0.0}), ConfigError);
    EXPECT_THROW(F81Model(kSkewed, 0.0), ConfigError);
    EXPECT_THROW(makeK80(0.0), ConfigError);
    EXPECT_THROW(makeF84(-1.0, kSkewed), ConfigError);
    BaseFreqs notNormalized{0.5, 0.5, 0.5, 0.5};
    EXPECT_THROW(makeHky85(2.0, notNormalized), ConfigError);
    const F81Model m(kSkewed);
    EXPECT_THROW(m.transition(-0.1), InvariantError);
}

}  // namespace
}  // namespace mpcgs
