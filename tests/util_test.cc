// Tests for the util layer: option parsing, table formatting, timers.
#include <sstream>

#include <gtest/gtest.h>

#include "util/options.h"
#include "util/table.h"
#include "util/timer.h"

namespace mpcgs {
namespace {

Options parse(std::initializer_list<const char*> args) {
    std::vector<const char*> argv{"prog"};
    argv.insert(argv.end(), args.begin(), args.end());
    return Options::parse(static_cast<int>(argv.size()), argv.data());
}

TEST(OptionsTest, KeyValueForms) {
    // NB: a bare option followed by a non-option token consumes it as a
    // value (documented contract), so flags belong after positionals or
    // before other options.
    const Options o = parse({"pos1", "pos2", "--alpha", "1.5", "--name=foo", "--flag"});
    EXPECT_TRUE(o.has("alpha"));
    EXPECT_DOUBLE_EQ(o.getDouble("alpha", 0.0), 1.5);
    EXPECT_EQ(o.get("name", ""), "foo");
    EXPECT_TRUE(o.has("flag"));
    EXPECT_TRUE(o.getBool("flag", false));
    ASSERT_EQ(o.positional().size(), 2u);
    EXPECT_EQ(o.positional()[0], "pos1");
    EXPECT_EQ(o.programName(), "prog");
}

TEST(OptionsTest, BareOptionConsumesFollowingToken) {
    const Options o = parse({"--flag", "pos1", "pos2"});
    EXPECT_EQ(o.get("flag", ""), "pos1");
    ASSERT_EQ(o.positional().size(), 1u);
    EXPECT_EQ(o.positional()[0], "pos2");
}

TEST(OptionsTest, DefaultsWhenMissing) {
    const Options o = parse({});
    EXPECT_FALSE(o.has("x"));
    EXPECT_EQ(o.getInt("x", 42), 42);
    EXPECT_DOUBLE_EQ(o.getDouble("x", 2.5), 2.5);
    EXPECT_EQ(o.get("x", "d"), "d");
    EXPECT_FALSE(o.getBool("x", false));
    EXPECT_TRUE(o.getBool("x", true));
}

TEST(OptionsTest, BoolSpellings) {
    EXPECT_TRUE(parse({"--a", "true"}).getBool("a", false));
    EXPECT_TRUE(parse({"--a", "1"}).getBool("a", false));
    EXPECT_TRUE(parse({"--a", "yes"}).getBool("a", false));
    EXPECT_FALSE(parse({"--a", "no"}).getBool("a", true));
    EXPECT_FALSE(parse({"--a", "0"}).getBool("a", true));
}

TEST(OptionsTest, FlagFollowedByOption) {
    // A bare flag directly before another option must not eat it.
    const Options o = parse({"--verbose", "--count", "3"});
    EXPECT_TRUE(o.getBool("verbose", false));
    EXPECT_EQ(o.getInt("count", 0), 3);
}

TEST(OptionsTest, NegativeNumberAsValue) {
    const Options o = parse({"--offset", "-2.5"});
    EXPECT_DOUBLE_EQ(o.getDouble("offset", 0.0), -2.5);
}

TEST(TableTest, AlignedOutput) {
    Table t({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"a-very-long-name", "2.75"});
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("| name"), std::string::npos);
    EXPECT_NE(out.find("a-very-long-name"), std::string::npos);
    // All lines equal width.
    std::istringstream lines(out);
    std::string line, first;
    std::getline(lines, first);
    while (std::getline(lines, line)) EXPECT_EQ(line.size(), first.size());
}

TEST(TableTest, CsvOutput) {
    Table t({"a", "b"});
    t.addRow({"1", "2"});
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(TableTest, Validation) {
    EXPECT_THROW(Table({}), std::invalid_argument);
    Table t({"a", "b"});
    EXPECT_THROW(t.addRow({"only-one"}), std::invalid_argument);
    EXPECT_EQ(t.rows(), 0u);
    EXPECT_EQ(t.cols(), 2u);
}

TEST(TableTest, NumberFormatting) {
    EXPECT_EQ(Table::num(3.14159, 2), "3.14");
    EXPECT_EQ(Table::num(1.0, 0), "1");
    EXPECT_EQ(Table::integer(-42), "-42");
}

TEST(TimerTest, MeasuresElapsedTime) {
    Timer t;
    // Trivial busy loop; just verify monotonicity and reset.
    volatile double x = 0.0;
    for (int i = 0; i < 100000; ++i) x = x + i;
    const double a = t.seconds();
    EXPECT_GE(a, 0.0);
    t.reset();
    EXPECT_LE(t.seconds(), a + 1.0);
}

TEST(TimerTest, PhaseTimerAccumulates) {
    PhaseTimer pt;
    pt.start();
    pt.stop();
    pt.start();
    pt.stop();
    EXPECT_GE(pt.totalSeconds(), 0.0);
    pt.reset();
    EXPECT_DOUBLE_EQ(pt.totalSeconds(), 0.0);
}

TEST(TimerTest, ElapsedTimeNeverRunsBackwards) {
    // The static_assert in util/timer.h pins the clock to steady_clock;
    // this is the runtime half of that contract: successive readings of
    // one Timer are non-decreasing, so no phase duration or speedup table
    // can ever report a negative interval.
    Timer t;
    double prev = t.seconds();
    EXPECT_GE(prev, 0.0);
    for (int i = 0; i < 1000; ++i) {
        const double now = t.seconds();
        ASSERT_GE(now, prev) << "timer ran backwards at reading " << i;
        prev = now;
    }
}

TEST(TimerTest, PhaseTimerNeverAccumulatesNegativeIntervals) {
    PhaseTimer pt;
    double prevTotal = 0.0;
    for (int i = 0; i < 200; ++i) {
        pt.start();
        pt.stop();
        const double total = pt.totalSeconds();
        ASSERT_GE(total, prevTotal) << "phase total shrank at interval " << i;
        prevTotal = total;
    }
    // stop() without start() must not add a phantom interval.
    pt.stop();
    EXPECT_DOUBLE_EQ(pt.totalSeconds(), prevTotal);
}

TEST(FormatDurationTest, PicksUnits) {
    EXPECT_EQ(formatDuration(90.0), "1.5 min");
    EXPECT_EQ(formatDuration(2.5), "2.50 s");
    EXPECT_EQ(formatDuration(0.25), "250 ms");
    EXPECT_EQ(formatDuration(2e-5), "20 us");
}

}  // namespace
}  // namespace mpcgs
