#include "mcmc/heated.h"

#include <array>
#include <cmath>

#include <gtest/gtest.h>

#include "util/stats.h"

namespace mpcgs {
namespace {

/// Bimodal 1-D target: mixture of two well-separated Gaussians. A plain
/// random-walk chain gets trapped in one mode; heated chains tunnel.
struct BimodalProblem {
    using State = double;
    double logPosterior(const State& x) const {
        const double a = -0.5 * (x + 6.0) * (x + 6.0) / 0.25;
        const double b = -0.5 * (x - 6.0) * (x - 6.0) / 0.25;
        const double m = std::max(a, b);
        return m + std::log(std::exp(a - m) + std::exp(b - m));
    }
    struct Proposal {
        State state;
        double logForward;
        double logReverse;
    };
    Proposal propose(const State& cur, Rng& rng) const {
        return Proposal{cur + rng.normal(0.0, 1.0), 0.0, 0.0};
    }
};

TEST(HeatedChainsTest, ValidatesTemperatureLadder) {
    const BimodalProblem problem;
    HeatedOptions bad;
    bad.temperatures = {1.5, 2.0};
    EXPECT_THROW((HeatedChains<BimodalProblem>(problem, 0.0, bad)), std::invalid_argument);
    bad.temperatures = {1.0, 0.5};
    EXPECT_THROW((HeatedChains<BimodalProblem>(problem, 0.0, bad)), std::invalid_argument);
    bad.temperatures = {};
    EXPECT_THROW((HeatedChains<BimodalProblem>(problem, 0.0, bad)), std::invalid_argument);
}

TEST(HeatedChainsTest, ColdChainVisitsBothModes) {
    const BimodalProblem problem;
    HeatedOptions opts;
    opts.temperatures = {1.0, 4.0, 16.0, 64.0};
    opts.swapInterval = 2;
    opts.seed = 3;
    HeatedChains<BimodalProblem> mc3(problem, -6.0, opts);
    std::size_t leftHits = 0, rightHits = 0;
    mc3.run(500, 60000, [&](const double& x) {
        if (x < -3.0) ++leftHits;
        if (x > 3.0) ++rightHits;
    });
    // Both modes visited substantially (a cold-only chain essentially never
    // crosses a 24-sigma valley).
    EXPECT_GT(leftHits, 5000u);
    EXPECT_GT(rightHits, 5000u);
    EXPECT_GT(mc3.stats().swapRate(), 0.05);
}

TEST(HeatedChainsTest, SingleColdChainMatchesPlainMh) {
    // With one temperature the sampler reduces to plain MH on pi.
    struct Gaussian {
        using State = double;
        double logPosterior(const State& x) const { return -0.5 * x * x; }
        struct Proposal {
            State state;
            double logForward;
            double logReverse;
        };
        Proposal propose(const State& cur, Rng& rng) const {
            return Proposal{cur + rng.normal(0.0, 1.2), 0.0, 0.0};
        }
    };
    const Gaussian problem;
    HeatedOptions opts;
    opts.temperatures = {1.0};
    opts.seed = 4;
    HeatedChains<Gaussian> chain(problem, 4.0, opts);
    RunningStats rs;
    chain.run(1000, 80000, [&](const double& x) { rs.add(x); });
    EXPECT_NEAR(rs.mean(), 0.0, 0.05);
    EXPECT_NEAR(rs.variance(), 1.0, 0.08);
    EXPECT_EQ(chain.stats().swapsProposed, 0u);
}

TEST(HeatedChainsTest, MarginalOfColdChainIsCorrectDespiteSwaps) {
    // Swaps must not distort the cold marginal: compare moments of the
    // bimodal target against the analytic mixture moments (mean 0,
    // variance 36.25).
    const BimodalProblem problem;
    HeatedOptions opts;
    opts.temperatures = {1.0, 4.0, 16.0, 64.0};
    opts.swapInterval = 2;
    opts.seed = 5;
    HeatedChains<BimodalProblem> mc3(problem, 6.0, opts);
    RunningStats rs;
    mc3.run(2000, 150000, [&](const double& x) { rs.add(x); });
    EXPECT_NEAR(rs.mean(), 0.0, 1.2);
    EXPECT_NEAR(rs.variance(), 36.25, 4.0);
}

TEST(HeatedChainsTest, ColdLogPosteriorStaysInSync) {
    const BimodalProblem problem;
    HeatedOptions opts;
    opts.temperatures = {1.0, 8.0};
    opts.swapInterval = 1;
    opts.seed = 6;
    HeatedChains<BimodalProblem> mc3(problem, -6.0, opts);
    for (int i = 0; i < 500; ++i) {
        mc3.sweep();
        EXPECT_DOUBLE_EQ(mc3.coldLogPosterior(), problem.logPosterior(mc3.cold()));
    }
}

}  // namespace
}  // namespace mpcgs
