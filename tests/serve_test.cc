// The serve subsystem (src/serve/serve.h): state checkpoint round-trip,
// kill+resume bitwise equality, the job protocol's reply contract
// (job-level errors reply, runtime faults propagate), and a live
// socket-loop smoke against a real Unix-domain socket.
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "coalescent/simulator.h"
#include "mcmc/checkpoint.h"
#include "obs/metrics.h"
#include "rng/mt19937.h"
#include "seq/seqgen.h"
#include "serve/json_mini.h"
#include "serve/serve.h"
#include "serve/trace_sink.h"
#include "smc/online_update.h"
#include "util/failpoint.h"

namespace mpcgs {
namespace {

Alignment simAlignment(int tips, std::uint64_t seed) {
    Mt19937 rng(seed);
    const Genealogy g = simulateCoalescent(tips, 1.0, rng);
    SeqGenOptions so;
    so.length = 100;
    const auto model = makeF84(2.0, kUniformFreqs);
    return simulateSequences(g, *model, so, rng);
}

Alignment dropLast(const Alignment& full) {
    return Alignment(std::vector<Sequence>(full.sequences().begin(),
                                           full.sequences().end() - 1));
}

OnlineState smallState(const Alignment& head, std::uint64_t seed) {
    SmcOptions smc;
    smc.particles = 24;
    return initOnlineState(head, 1.0, smc, "F81", seed);
}

std::string tempPath(const std::string& name) { return ::testing::TempDir() + name; }

void expectStatesEqual(const OnlineState& a, const OnlineState& b) {
    EXPECT_EQ(a.substModel, b.substModel);
    EXPECT_EQ(a.theta, b.theta);
    EXPECT_EQ(a.seed, b.seed);
    EXPECT_EQ(a.updates, b.updates);
    EXPECT_EQ(a.logZ, b.logZ);
    ASSERT_EQ(a.alignment.sequenceCount(), b.alignment.sequenceCount());
    for (std::size_t s = 0; s < a.alignment.sequenceCount(); ++s) {
        EXPECT_EQ(a.alignment.sequences()[s].name(), b.alignment.sequences()[s].name());
        EXPECT_EQ(a.alignment.sequences()[s].toString(),
                  b.alignment.sequences()[s].toString());
    }
    ASSERT_EQ(a.particles.size(), b.particles.size());
    for (std::size_t p = 0; p < a.particles.size(); ++p) {
        EXPECT_EQ(a.particles[p].logW, b.particles[p].logW);
        EXPECT_EQ(a.particles[p].logL, b.particles[p].logL);
        EXPECT_EQ(a.particles[p].tree, b.particles[p].tree);
    }
}

TEST(OnlineStateCheckpointTest, SaveLoadRoundTripsEveryField) {
    const std::string path = tempPath("online_roundtrip.mpck");
    const Alignment full = simAlignment(6, 51);
    const OnlineState st = smallState(dropLast(full), 13);
    saveOnlineState(path, st);
    const OnlineState back = loadOnlineState(path);
    expectStatesEqual(st, back);

    // RNG streams restored exactly: identical draws afterwards.
    Mt19937 h1 = st.hostRng, h2 = back.hostRng;
    for (int i = 0; i < 8; ++i) EXPECT_EQ(h1.uniform01(), h2.uniform01());
    ASSERT_EQ(st.slotRngs.size(), back.slotRngs.size());
    Mt19937 s1 = st.slotRngs.front(), s2 = back.slotRngs.front();
    for (int i = 0; i < 8; ++i) EXPECT_EQ(s1.uniform01(), s2.uniform01());

    std::remove(path.c_str());
    std::remove((path + ".prev").c_str());
}

TEST(OnlineStateCheckpointTest, LoadRejectsMissingAndCorruptFiles) {
    EXPECT_THROW(loadOnlineState(tempPath("no_such_state.mpck")), ResumeError);
    const std::string path = tempPath("corrupt_state.mpck");
    {
        std::FILE* f = std::fopen(path.c_str(), "wb");
        ASSERT_NE(f, nullptr);
        std::fputs("garbage", f);
        std::fclose(f);
    }
    EXPECT_THROW(loadOnlineState(path), ResumeError);
    std::remove(path.c_str());
}

TEST(OnlineStateCheckpointTest, KillAndResumeContinuesBitwiseIdentically) {
    const std::string path = tempPath("online_resume.mpck");
    const Alignment full = simAlignment(6, 57);
    const Sequence& arrival = full.sequences().back();
    const OnlineOptions oo;

    // Uninterrupted: init -> update.
    OnlineState live = smallState(dropLast(full), 21);
    saveOnlineState(path, live);  // the "kill point" snapshot
    OnlineSmcUpdater liveUpdater(live, oo);
    liveUpdater.addSequence(arrival);

    // Killed + resumed: reload the snapshot, apply the same update.
    OnlineState resumed = loadOnlineState(path);
    OnlineSmcUpdater resumedUpdater(resumed, oo);
    resumedUpdater.addSequence(arrival);

    expectStatesEqual(live, resumed);

    std::remove(path.c_str());
    std::remove((path + ".prev").c_str());
}

TEST(ServeSessionTest, JobProtocolRepliesAndJobLevelErrorsDoNotKillTheSession) {
    const std::string path = tempPath("serve_session.mpck");
    std::remove(path.c_str());
    const Alignment full = simAlignment(6, 61);
    ServeSession session(smallState(dropLast(full), 33), path, OnlineOptions{});

    // Query jobs.
    std::string reply = session.handleLine("{\"job\":\"estimate\"}");
    EXPECT_NE(reply.find("\"ok\":true"), std::string::npos) << reply;
    EXPECT_NE(reply.find("\"theta\":"), std::string::npos) << reply;
    reply = session.handleLine("{\"job\":\"logz\"}");
    EXPECT_NE(reply.find("\"logz\":"), std::string::npos) << reply;

    // Job-level errors become {"ok":false,...} replies with a kind.
    reply = session.handleLine("not json at all");
    EXPECT_NE(reply.find("\"ok\":false"), std::string::npos) << reply;
    EXPECT_NE(reply.find("\"kind\":\"parse\""), std::string::npos) << reply;
    reply = session.handleLine("{\"job\":\"frobnicate\"}");
    EXPECT_NE(reply.find("\"kind\":\"config\""), std::string::npos) << reply;
    reply = session.handleLine("{\"job\":\"add_sequence\",\"name\":\"x\",\"sequence\":\"ACGT\"}");
    EXPECT_NE(reply.find("\"kind\":\"config\""), std::string::npos) << reply;  // length
    const std::string dupName = full.sequences().front().name();
    reply = session.handleLine("{\"job\":\"add_sequence\",\"name\":\"" + dupName +
                               "\",\"sequence\":\"" +
                               full.sequences().back().toString() + "\"}");
    EXPECT_NE(reply.find("\"kind\":\"config\""), std::string::npos) << reply;  // duplicate
    EXPECT_EQ(session.state().updates, 0u);  // nothing above mutated the cloud

    // A real update: reply carries diagnostics and the checkpoint lands.
    reply = session.handleLine("{\"job\":\"add_sequence\",\"name\":\"" +
                               full.sequences().back().name() + "\",\"sequence\":\"" +
                               full.sequences().back().toString() + "\"}");
    EXPECT_NE(reply.find("\"ok\":true"), std::string::npos) << reply;
    EXPECT_NE(reply.find("\"logz_increment\":"), std::string::npos) << reply;
    EXPECT_EQ(session.state().updates, 1u);
    EXPECT_EQ(session.state().alignment.sequenceCount(), 6u);
    EXPECT_TRUE(checkpointExists(path));

    // The snapshot is immediately resumable.
    const OnlineState back = loadOnlineState(path);
    expectStatesEqual(session.state(), back);

    // Shutdown latches the flag (the socket loop exits on it).
    reply = session.handleLine("{\"job\":\"shutdown\"}");
    EXPECT_NE(reply.find("\"ok\":true"), std::string::npos) << reply;
    EXPECT_TRUE(session.shutdownRequested());
    EXPECT_EQ(session.jobsHandled(), 8u);

    std::remove(path.c_str());
    std::remove((path + ".prev").c_str());
}

TEST(ServeSessionTest, SupervisorStopSnapshotsAndRaisesInterrupted) {
    failpoint::reset();
    const std::string path = tempPath("serve_stop.mpck");
    std::remove(path.c_str());
    const Alignment full = simAlignment(5, 67);
    RunSupervisor::Config cfg;
    cfg.handleSignals = false;
    RunSupervisor sv(cfg);
    ServeSession session(smallState(full, 71), path, OnlineOptions{}, nullptr, &sv);

    failpoint::configure("supervisor.stop=once");
    try {
        session.handleLine("{\"job\":\"estimate\"}");
        FAIL() << "supervisor stop did not raise";
    } catch (const InterruptedError& e) {
        EXPECT_TRUE(e.checkpointWritten());
    }
    failpoint::reset();
    // The final snapshot is loadable — the daemon restart path.
    const OnlineState back = loadOnlineState(path);
    expectStatesEqual(session.state(), back);

    std::remove(path.c_str());
    std::remove((path + ".prev").c_str());
}

TEST(ServeLoopTest, UnixSocketSmokeServesJobsAndShutsDownCleanly) {
    const std::string sock = tempPath("serve_smoke.sock");
    const Alignment full = simAlignment(6, 73);
    ServeSession session(smallState(dropLast(full), 77), "", OnlineOptions{});
    ServeEndpoint ep;
    ep.unixPath = sock;

    std::thread daemon([&] { runServeLoop(session, ep); });
    // Wait for the listener to come up (bind is fast; connect retries).
    std::string reply;
    for (int attempt = 0; attempt < 100; ++attempt) {
        try {
            reply = serveSendLine(ep, "{\"job\":\"estimate\"}");
            break;
        } catch (const Error&) {
            std::this_thread::sleep_for(std::chrono::milliseconds(20));
        }
    }
    EXPECT_NE(reply.find("\"ok\":true"), std::string::npos) << reply;

    const std::string addReply = serveSendLine(
        ep, "{\"job\":\"add_sequence\",\"name\":\"" + full.sequences().back().name() +
                "\",\"sequence\":\"" + full.sequences().back().toString() + "\"}");
    EXPECT_NE(addReply.find("\"logz_increment\":"), std::string::npos) << addReply;

    const std::string bye = serveSendLine(ep, "{\"job\":\"shutdown\"}");
    EXPECT_NE(bye.find("\"ok\":true"), std::string::npos) << bye;
    daemon.join();
    EXPECT_EQ(session.state().updates, 1u);
}

TEST(ServeSessionTest, MetricsJobReportsRegistryCountersAndLatencies) {
    obs::reset();
    obs::arm();
    const Alignment full = simAlignment(6, 83);
    ServeSession session(smallState(dropLast(full), 91), "", OnlineOptions{});

    // One accepted job before asking, so the counters have something to say.
    session.handleLine("{\"job\":\"estimate\"}");

    const std::string reply = session.handleLine("{\"job\":\"metrics\"}");
    EXPECT_NE(reply.find("\"ok\":true"), std::string::npos) << reply;
    EXPECT_NE(reply.find("\"armed\":true"), std::string::npos) << reply;
    // Flat dotted keys, same taxonomy as --metrics-out, parseable by the
    // protocol's own single-level grammar.
    const auto obj = json_mini::parse(reply);
    EXPECT_EQ(json_mini::getNumber(obj, "serve.jobs_accepted"), 1.0) << reply;
    EXPECT_EQ(json_mini::getNumber(obj, "serve.jobs_rejected"), 0.0) << reply;
    // The estimate job's ScopedLatency landed before the metrics snapshot.
    EXPECT_EQ(json_mini::getNumber(obj, "serve.job_latency_us.estimate.count"), 1.0)
        << reply;
    EXPECT_GE(json_mini::getNumber(obj, "serve.job_latency_us.estimate.p99"), 0.0);

    // Prometheus exposition rides inside the JSON reply as escaped text;
    // unescaping through the parser recovers the newline-separated format.
    const std::string prom =
        session.handleLine("{\"job\":\"metrics\",\"format\":\"prometheus\"}");
    EXPECT_NE(prom.find("\"ok\":true"), std::string::npos) << prom;
    const auto pobj = json_mini::parse(prom);
    const std::string text = json_mini::getString(pobj, "text");
    EXPECT_NE(text.find("# TYPE mpcgs_serve_jobs_accepted counter"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("mpcgs_serve_job_latency_us_estimate_bucket{le="),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("le=\"+Inf\""), std::string::npos) << text;

    // An unknown format is a job-level config error, not a daemon death.
    const std::string bad =
        session.handleLine("{\"job\":\"metrics\",\"format\":\"xml\"}");
    EXPECT_NE(bad.find("\"ok\":false"), std::string::npos) << bad;
    EXPECT_NE(bad.find("\"kind\":\"config\""), std::string::npos) << bad;

    obs::disarm();
    obs::reset();
}

TEST(ServeSessionTest, MetricsJobRepliesEvenUnarmed) {
    obs::reset();
    const Alignment full = simAlignment(5, 101);
    ServeSession session(smallState(full, 103), "", OnlineOptions{});
    const std::string reply = session.handleLine("{\"job\":\"metrics\"}");
    EXPECT_NE(reply.find("\"ok\":true"), std::string::npos) << reply;
    EXPECT_NE(reply.find("\"armed\":false"), std::string::npos) << reply;
    const auto obj = json_mini::parse(reply);
    EXPECT_EQ(json_mini::getNumber(obj, "serve.jobs_accepted"), 0.0) << reply;
}

TEST(CsvTraceSinkTest, WritesHeaderThenOneFlushedRowPerAcceptedUpdate) {
    const std::string path = tempPath("serve_trace.csv");
    std::remove(path.c_str());
    const Alignment full = simAlignment(6, 107);
    CsvTraceSink sink(path);
    ServeSession session(smallState(dropLast(full), 109), "", OnlineOptions{},
                         nullptr, nullptr, &sink);

    // Header is flushed on open, before any update arrives.
    {
        std::ifstream in(path);
        std::string header;
        ASSERT_TRUE(std::getline(in, header));
        EXPECT_EQ(header, "update,log_posterior,tree_height");
    }

    // Rejected updates must not write rows.
    session.handleLine("{\"job\":\"add_sequence\",\"name\":\"x\",\"sequence\":\"ACGT\"}");
    EXPECT_EQ(sink.rows(), 0u);

    const std::string add = session.handleLine(
        "{\"job\":\"add_sequence\",\"name\":\"" + full.sequences().back().name() +
        "\",\"sequence\":\"" + full.sequences().back().toString() + "\"}");
    EXPECT_NE(add.find("\"ok\":true"), std::string::npos) << add;
    EXPECT_EQ(sink.rows(), 1u);

    // consume() flushes per row, so the line is complete on disk while the
    // sink is still open — the tail-the-file / SIGTERM'd-daemon contract.
    std::ifstream in(path);
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
    ASSERT_EQ(lines.size(), 2u);
    double update = -1.0, logPost = 0.0, height = 0.0;
    char c1 = 0, c2 = 0;
    std::istringstream row(lines[1]);
    ASSERT_TRUE(row >> update >> c1 >> logPost >> c2 >> height) << lines[1];
    EXPECT_EQ(c1, ',');
    EXPECT_EQ(c2, ',');
    EXPECT_EQ(update, 0.0);  // first accepted update is index 0
    EXPECT_TRUE(std::isfinite(logPost));
    EXPECT_GT(height, 0.0);

    std::remove(path.c_str());
}

TEST(CsvTraceSinkTest, UnwritablePathIsAConfigError) {
    EXPECT_THROW(CsvTraceSink("/nonexistent_dir_mpcgs/trace.csv"), ConfigError);
}

TEST(JsonMiniTest, ParserAcceptsTheProtocolAndRejectsEverythingElse) {
    const auto obj = json_mini::parse(
        "  {\"job\" : \"add_sequence\", \"n\": -2.5e3, \"flag\": true} ");
    EXPECT_EQ(json_mini::getString(obj, "job"), "add_sequence");
    EXPECT_EQ(json_mini::getNumber(obj, "n"), -2500.0);
    EXPECT_TRUE(json_mini::has(obj, "flag"));
    EXPECT_THROW(json_mini::getString(obj, "missing"), ParseError);
    EXPECT_THROW(json_mini::getNumber(obj, "job"), ParseError);

    EXPECT_THROW(json_mini::parse(""), ParseError);
    EXPECT_THROW(json_mini::parse("{\"a\":1"), ParseError);
    EXPECT_THROW(json_mini::parse("{\"a\":{}}"), ParseError);   // nesting
    EXPECT_THROW(json_mini::parse("{\"a\":[1]}"), ParseError);  // arrays
    EXPECT_THROW(json_mini::parse("{\"a\":null}"), ParseError);
    EXPECT_THROW(json_mini::parse("{\"a\":1} trailing"), ParseError);

    // Writer round-trips escaping and %.17g numbers exactly.
    json_mini::Writer w;
    w.str("s", "quote \" slash \\ nl \n").num("x", 0.1).boolean("b", false);
    const auto rt = json_mini::parse(w.finish());
    EXPECT_EQ(json_mini::getString(rt, "s"), "quote \" slash \\ nl \n");
    EXPECT_EQ(json_mini::getNumber(rt, "x"), 0.1);
}

}  // namespace
}  // namespace mpcgs
