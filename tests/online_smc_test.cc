// Online SMC add-sequence move (src/smc/online_update.h): tripod
// attachment likelihoods must agree with full Felsenstein pruning on the
// explicitly grafted tree, an update must leave a normalized cloud whose
// cached likelihoods ARE the grafted trees' likelihoods, results must be
// bitwise invariant to the thread count, and the ESS-threshold boundaries
// (0.0 never / 1.0 always) must behave contractually for both the batch
// filter and the online refresh.
#include <cmath>
#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "coalescent/prior.h"
#include "coalescent/simulator.h"
#include "lik/felsenstein.h"
#include "lik/locus_likelihoods.h"
#include "par/thread_pool.h"
#include "rng/mt19937.h"
#include "seq/seqgen.h"
#include "smc/online_update.h"
#include "smc/smc_sampler.h"
#include "util/logspace.h"

namespace mpcgs {
namespace {

/// Simulated alignment of `tips` sequences (fixed seed per call site).
Alignment simAlignment(int tips, std::uint64_t seed, std::size_t length = 120) {
    Mt19937 rng(seed);
    const Genealogy g = simulateCoalescent(tips, 1.0, rng);
    SeqGenOptions so;
    so.length = length;
    const auto model = makeF84(2.0, kUniformFreqs);
    return simulateSequences(g, *model, so, rng);
}

Alignment dropLast(const Alignment& full) {
    return Alignment(std::vector<Sequence>(full.sequences().begin(),
                                           full.sequences().end() - 1));
}

/// Reference graft: copy `t` into an (n+1)-tip arena with the standard id
/// remap (old internals shift up by one, new tip = n, join node = 2n) and
/// splice the new tip onto `attach` at height `h` — the same surgery
/// addSequence performs, built independently here from the public tree API.
Genealogy graftForTest(const Genealogy& t, NodeId attach, double h) {
    const int n = t.tipCount();
    Genealogy g(n + 1);
    const auto map = [n](NodeId id) { return id < n ? id : id + 1; };
    for (NodeId v = 0; v < t.nodeCount(); ++v) g.node(map(v)).time = t.node(v).time;
    const NodeId join = 2 * n;
    g.node(join).time = h;
    for (NodeId v = 0; v < t.nodeCount(); ++v) {
        const NodeId p = t.node(v).parent;
        if (p == kNoNode || v == attach) continue;
        g.link(map(p), map(v));
    }
    if (attach == t.root()) {
        g.link(join, map(t.root()));
        g.link(join, n);
        g.setRoot(join);
    } else {
        g.link(map(t.node(attach).parent), join);
        g.link(join, map(attach));
        g.link(join, n);
        g.setRoot(map(t.root()));
    }
    g.validate();
    return g;
}

TEST(OnlineTripodTest, AttachmentLogLikMatchesExplicitGraftEverywhere) {
    const Alignment aln = simAlignment(5, 11);
    const auto model = makeInferenceModel("F81", aln);
    const DataLikelihood lik(aln, *model);

    Mt19937 rng(29);
    const Genealogy tree = simulateCoalescent(4, 1.0, rng);
    const double tRoot = tree.node(tree.root()).time;

    // Every branch of the tree at several interior heights, plus the root
    // lineage at several heights above the root.
    for (NodeId v = 0; v < tree.nodeCount(); ++v) {
        if (v == tree.root()) continue;
        const double lo = tree.node(v).time;
        const double hi = tree.node(tree.node(v).parent).time;
        for (const double f : {0.07, 0.5, 0.93}) {
            const double h = lo + f * (hi - lo);
            const double viaTripod = onlineAttachmentLogLik(lik, tree, v, h);
            const double viaFull = lik.logLikelihood(graftForTest(tree, v, h));
            EXPECT_NEAR(viaTripod, viaFull, 1e-9 * std::abs(viaFull))
                << "attach=" << v << " h=" << h;
        }
    }
    for (const double dh : {0.05, 0.6, 2.3}) {
        const double h = tRoot + dh;
        const double viaTripod = onlineAttachmentLogLik(lik, tree, tree.root(), h);
        const double viaFull = lik.logLikelihood(graftForTest(tree, tree.root(), h));
        EXPECT_NEAR(viaTripod, viaFull, 1e-9 * std::abs(viaFull)) << "root h=" << h;
    }
}

TEST(OnlineUpdateTest, AddSequenceCommitsExactLikelihoodsAndNormalizedWeights) {
    const Alignment full = simAlignment(6, 17);
    SmcOptions smc;
    smc.particles = 48;
    OnlineState st = initOnlineState(dropLast(full), 1.0, smc, "F81", 5);
    ASSERT_EQ(st.particles.size(), 48u);

    OnlineOptions oo;
    oo.essThreshold = 0.0;  // keep the reweighted cloud (no refresh)
    OnlineSmcUpdater updater(st, oo);
    const OnlineUpdateResult res = updater.addSequence(full.sequences().back());

    EXPECT_TRUE(std::isfinite(res.logZIncrement));
    EXPECT_FALSE(res.refreshed);
    EXPECT_EQ(st.updates, 1u);
    EXPECT_EQ(st.alignment.sequenceCount(), 6u);

    // Weights are normalized after the update.
    std::vector<double> logW;
    for (const OnlineParticle& p : st.particles) logW.push_back(p.logW);
    EXPECT_NEAR(logSumExp(std::span<const double>(logW)), 0.0, 1e-9);

    // Every committed particle is a valid 6-tip genealogy whose cached
    // logL IS the full-data Felsenstein likelihood of its tree — the
    // tripod score the proposal used, cross-checked against the
    // independent pruning engine.
    const auto model = makeInferenceModel("F81", st.alignment);
    const DataLikelihood lik(st.alignment, *model);
    for (const OnlineParticle& p : st.particles) {
        ASSERT_EQ(p.tree.tipCount(), 6);
        p.tree.validate();
        const double reference = lik.logLikelihood(p.tree);
        EXPECT_NEAR(p.logL, reference, 1e-7 * std::abs(reference));
    }
}

TEST(OnlineUpdateTest, UpdateIsBitwiseThreadCountInvariant) {
    const Alignment full = simAlignment(6, 23);
    SmcOptions smc;
    smc.particles = 32;
    const OnlineState seedState = initOnlineState(dropLast(full), 1.0, smc, "F81", 9);

    OnlineOptions oo;
    oo.essThreshold = 1.0;  // exercise the refresh + rejuvenation path too
    std::vector<OnlineState> states;
    std::vector<OnlineUpdateResult> results;
    for (const unsigned threads : {1u, 4u, 8u}) {
        ThreadPool pool(threads);
        OnlineState st = seedState;
        OnlineSmcUpdater updater(st, oo, &pool);
        results.push_back(updater.addSequence(full.sequences().back()));
        states.push_back(std::move(st));
    }
    for (std::size_t i = 1; i < states.size(); ++i) {
        EXPECT_EQ(results[0].logZIncrement, results[i].logZIncrement);
        EXPECT_EQ(results[0].essFraction, results[i].essFraction);
        EXPECT_EQ(results[0].rejuvenationAccepts, results[i].rejuvenationAccepts);
        EXPECT_EQ(states[0].logZ, states[i].logZ);
        ASSERT_EQ(states[0].particles.size(), states[i].particles.size());
        for (std::size_t p = 0; p < states[0].particles.size(); ++p) {
            EXPECT_EQ(states[0].particles[p].logW, states[i].particles[p].logW);
            EXPECT_EQ(states[0].particles[p].logL, states[i].particles[p].logL);
            EXPECT_EQ(states[0].particles[p].tree, states[i].particles[p].tree);
        }
    }
}

/// Exact log P(D | theta) for n = 3 by brute force: sum over the 3
/// labelled first pairs and midpoint quadrature over (t3, t2) — the same
/// reference smc_test.cc validates the batch filter against.
double exactLogMarginalThreeTips(const DataLikelihood& lik, const Alignment& aln,
                                 double theta) {
    const int grid = 120;
    const double t3Max = 6.0 * theta;
    const double t2Max = 15.0 * theta;
    const double h3 = t3Max / grid;
    const double h2 = t2Max / grid;
    std::vector<double> logVals;
    logVals.reserve(3 * grid * grid);
    for (int pair = 0; pair < 3; ++pair) {
        const int a = pair == 0 ? 0 : (pair == 1 ? 0 : 1);
        const int b = pair == 0 ? 1 : 2;
        const int c = pair == 0 ? 2 : (pair == 1 ? 1 : 0);
        Genealogy g(3);
        g.setTipNames(aln.names());
        g.link(3, a);
        g.link(3, b);
        g.link(4, 3);
        g.link(4, c);
        g.setRoot(4);
        for (int i = 0; i < grid; ++i) {
            const double t3 = (i + 0.5) * h3;
            for (int j = 0; j < grid; ++j) {
                const double t2 = (j + 0.5) * h2;
                g.node(3).time = t3;
                g.node(4).time = t3 + t2;
                logVals.push_back(logCoalescentWaitDensity(3, t3, theta) +
                                  logCoalescentWaitDensity(2, t2, theta) +
                                  lik.logLikelihoodReference(g));
            }
        }
    }
    return logSumExp(std::span<const double>(logVals)) + std::log(h3 * h2);
}

TEST(OnlineUpdateTest, ReweightMathMatchesBruteForceQuadratureOnThreeTips) {
    // A 2-tip warm posterior extended online by a 3rd sequence estimates
    // log P(D_3 | theta). The estimator stays unbiased in Z only if the
    // reweight delta uses the EXACT proposal densities (branch softmax and
    // height draw) and prior ratio, so pooling independent replicates must
    // reproduce the brute-force 3-tip marginal. Any density error shifts
    // this mean.
    const Alignment full = simAlignment(3, 101, 80);
    SmcOptions smc;
    smc.particles = 4096;
    std::vector<double> logZs;
    for (const std::uint64_t seed : {201ull, 202ull, 203ull, 204ull}) {
        OnlineState st = initOnlineState(dropLast(full), 1.0, smc, "F81", seed);
        OnlineOptions oo;
        oo.essThreshold = 0.0;  // the raw reweighted estimator, no refresh
        OnlineSmcUpdater updater(st, oo);
        updater.addSequence(full.sequences().back());
        logZs.push_back(st.logZ);
    }
    const double pooled = logSumExp(std::span<const double>(logZs)) -
                          std::log(static_cast<double>(logZs.size()));

    const auto model = makeInferenceModel("F81", full);
    const DataLikelihood lik(full, *model);
    const double exact = exactLogMarginalThreeTips(lik, full, 1.0);
    // Quadrature discretization + Monte-Carlo error across 4 x 4096
    // particles (offline: |diff| well under 0.05).
    EXPECT_NEAR(pooled, exact, 0.15);
}

TEST(OnlineUpdateTest, OnlineLogZAgreesWithColdStartToMonteCarloPrecision) {
    const Alignment full = simAlignment(6, 31);
    SmcOptions smc;
    smc.particles = 512;

    // Warm path: posterior over the first 5 sequences, then one online
    // add-sequence update.
    OnlineState st = initOnlineState(dropLast(full), 1.0, smc, "F81", 41);
    OnlineOptions oo;
    OnlineSmcUpdater updater(st, oo);
    updater.addSequence(full.sequences().back());

    // Cold path: a fresh 6-sequence filter pass (independent seed). Both
    // logZ values estimate the same log P(D_6 | theta); they agree to
    // Monte-Carlo precision, not bitwise.
    const auto model = makeInferenceModel("F81", full);
    const DataLikelihood lik(full, *model);
    const SmcPassResult cold = runSmcPass(lik, 1.0, smc, 97);

    EXPECT_TRUE(std::isfinite(st.logZ));
    EXPECT_NEAR(st.logZ, cold.logZ, 12.0);
    const double theta = onlineThetaEstimate(st);
    EXPECT_GT(theta, 0.0);
    EXPECT_TRUE(std::isfinite(theta));
    EXPECT_GT(onlineEssFraction(st), 0.0);
}

TEST(EssThresholdBoundaryTest, BatchFilterHonorsTheContractAtBothBoundaries) {
    const Alignment aln = simAlignment(6, 43);
    const auto model = makeInferenceModel("F81", aln);
    const DataLikelihood lik(aln, *model);

    SmcOptions smc;
    smc.particles = 64;

    // 0.0: never resample. ESS can reach 1, but the trigger is disabled.
    smc.essThreshold = 0.0;
    EXPECT_EQ(runSmcPass(lik, 1.0, smc, 7).resamples, 0u);

    // 1.0: resample on EVERY step (n-1 coalescences, last step excluded),
    // even when the cloud is exactly uniform (ESS == N) — the regression
    // this contract exists for.
    smc.essThreshold = 1.0;
    EXPECT_EQ(runSmcPass(lik, 1.0, smc, 7).resamples,
              static_cast<std::size_t>(aln.sequenceCount()) - 2);

    // Interior threshold: bounded by the two boundaries.
    smc.essThreshold = 0.5;
    const std::size_t mid = runSmcPass(lik, 1.0, smc, 7).resamples;
    EXPECT_LE(mid, static_cast<std::size_t>(aln.sequenceCount()) - 2);
}

TEST(EssThresholdBoundaryTest, OnlineRefreshHonorsTheContractAtBothBoundaries) {
    const Alignment full = simAlignment(6, 47);
    SmcOptions smc;
    smc.particles = 32;
    const OnlineState seedState = initOnlineState(dropLast(full), 1.0, smc, "F81", 3);

    {
        OnlineState st = seedState;
        OnlineOptions oo;
        oo.essThreshold = 0.0;
        OnlineSmcUpdater updater(st, oo);
        EXPECT_FALSE(updater.addSequence(full.sequences().back()).refreshed);
    }
    {
        OnlineState st = seedState;
        OnlineOptions oo;
        oo.essThreshold = 1.0;
        OnlineSmcUpdater updater(st, oo);
        const OnlineUpdateResult res = updater.addSequence(full.sequences().back());
        EXPECT_TRUE(res.refreshed);
        // After a refresh the weights are uniform: ESS/N == 1.
        EXPECT_NEAR(onlineEssFraction(st), 1.0, 1e-12);
    }
}

}  // namespace
}  // namespace mpcgs
