// Multi-locus joint-theta inference: pooled-likelihood math, L = 1
// equivalence with the single-alignment path, bitwise thread-count
// invariance of multi-locus runs, pooled-estimate accuracy, checkpoint v2
// kill/resume and v1 read compatibility, and option validation.
#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "coalescent/simulator.h"
#include "core/driver.h"
#include "core/locus_problem.h"
#include "core/samplers.h"
#include "mcmc/checkpoint.h"
#include "rng/mt19937.h"
#include "rng/splitmix.h"
#include "seq/seqgen.h"
#include "seq/subst_model.h"
#include "util/error.h"

namespace mpcgs {
namespace {

std::string tempPath(const std::string& name) {
    return ::testing::TempDir() + "/" + name;
}

Alignment simulateLocus(int n, double theta, std::size_t length, std::uint64_t seed) {
    Mt19937 rng = Mt19937::fromSplitMix(seed);
    const Genealogy g = simulateCoalescent(n, theta, rng);
    const auto model = makeF84(2.0, kUniformFreqs);
    return simulateSequences(g, *model, {length, 1.0}, rng);
}

/// L independent loci under one true theta, per-locus seeds via SplitMix64.
Dataset simulateDataset(std::size_t loci, int n, double theta, std::size_t length,
                        std::uint64_t seed) {
    Dataset ds;
    for (std::size_t l = 0; l < loci; ++l)
        ds.add(Locus{"locus" + std::to_string(l),
                     simulateLocus(n, theta, length, splitMix64At(seed, l)), 1.0});
    return ds;
}

MpcgsOptions quickOptions(Strategy strategy) {
    MpcgsOptions o;
    o.theta0 = 0.5;
    o.emIterations = 2;
    o.samplesPerIteration = 400;
    o.strategy = strategy;
    o.gmhProposals = 16;
    o.gmhSamplesPerSet = 8;
    o.chains = 4;
    o.seed = 31;
    return o;
}

/// Truly bitwise double equality (EXPECT_DOUBLE_EQ tolerates 4 ULP, which
/// would let exactly the reduction-order drift these tests exist to catch
/// slip through).
#define EXPECT_BITWISE_EQ(x, y) \
    EXPECT_EQ(std::bit_cast<std::uint64_t>(static_cast<double>(x)), \
              std::bit_cast<std::uint64_t>(static_cast<double>(y)))

void expectBitwiseEqual(const MpcgsResult& a, const MpcgsResult& b) {
    EXPECT_BITWISE_EQ(a.theta, b.theta);
    ASSERT_EQ(a.history.size(), b.history.size());
    for (std::size_t i = 0; i < a.history.size(); ++i) {
        EXPECT_BITWISE_EQ(a.history[i].thetaBefore, b.history[i].thetaBefore);
        EXPECT_BITWISE_EQ(a.history[i].thetaAfter, b.history[i].thetaAfter);
        EXPECT_BITWISE_EQ(a.history[i].logLAtMax, b.history[i].logLAtMax);
        EXPECT_EQ(a.history[i].samples, b.history[i].samples);
        EXPECT_BITWISE_EQ(a.history[i].moveRate, b.history[i].moveRate);
    }
    ASSERT_EQ(a.loci.size(), b.loci.size());
    for (std::size_t l = 0; l < a.loci.size(); ++l) {
        EXPECT_BITWISE_EQ(a.loci[l].drivingTheta, b.loci[l].drivingTheta);
        ASSERT_EQ(a.loci[l].summaries.size(), b.loci[l].summaries.size());
        for (std::size_t i = 0; i < a.loci[l].summaries.size(); ++i) {
            EXPECT_BITWISE_EQ(a.loci[l].summaries[i].weightedSum,
                              b.loci[l].summaries[i].weightedSum);
            EXPECT_EQ(a.loci[l].summaries[i].events, b.loci[l].summaries[i].events);
        }
    }
}

// --- pooled likelihood math --------------------------------------------

TEST(PooledLikelihoodTest, PooledLogLIsSumOfScaledLocusCurves) {
    std::vector<IntervalSummary> s1{{3.0, 5}, {4.5, 5}, {2.5, 5}};
    std::vector<IntervalSummary> s2{{6.0, 7}, {5.0, 7}};
    const RelativeLikelihood rl1(s1, 0.8);
    const RelativeLikelihood rl2(s2, 1.6);  // driving theta of a mu=2 locus at theta0=0.8

    std::vector<PooledRelativeLikelihood::LocusTerm> terms;
    terms.push_back({RelativeLikelihood(s1, 0.8), 1.0, "a"});
    terms.push_back({RelativeLikelihood(s2, 1.6), 2.0, "b"});
    const PooledRelativeLikelihood pooled(std::move(terms));

    for (const double theta : {0.3, 0.8, 1.1, 2.7})
        EXPECT_DOUBLE_EQ(pooled.logL(theta), rl1.logL(theta) + rl2.logL(2.0 * theta));
    EXPECT_EQ(pooled.sampleCount(), 5u);
    EXPECT_EQ(pooled.locusCount(), 2u);
}

TEST(PooledLikelihoodTest, SingleLocusPoolReducesToPlainCurve) {
    std::vector<IntervalSummary> s{{3.0, 4}, {4.0, 4}, {3.5, 4}};
    const RelativeLikelihood rl(s, 1.0);
    std::vector<PooledRelativeLikelihood::LocusTerm> terms;
    terms.push_back({RelativeLikelihood(s, 1.0), 1.0, "only"});
    const PooledRelativeLikelihood pooled(std::move(terms));
    for (const double theta : {0.2, 1.0, 4.0})
        EXPECT_DOUBLE_EQ(pooled.logL(theta), rl.logL(theta));
}

TEST(PooledLikelihoodTest, LocusStreamSeedKeepsLocusZeroUnchanged) {
    EXPECT_EQ(locusStreamSeed(0xABCDEF0123456789ull, 0), 0xABCDEF0123456789ull);
    EXPECT_NE(locusStreamSeed(0xABCDEF0123456789ull, 1), 0xABCDEF0123456789ull);
}

// --- L = 1 equivalence and thread invariance ---------------------------

TEST(MultiLocusDriverTest, SingleLocusDatasetMatchesAlignmentPathPerStrategy) {
    const Alignment aln = simulateLocus(7, 1.0, 250, 101);
    for (const Strategy s : {Strategy::Gmh, Strategy::SerialMh, Strategy::MultiChain,
                             Strategy::HeatedMh}) {
        const MpcgsOptions o = quickOptions(s);
        ThreadPool pool(4);
        const MpcgsResult viaAlignment = estimateTheta(aln, o, &pool);
        const MpcgsResult viaDataset = estimateTheta(Dataset::single(aln), o, &pool);
        expectBitwiseEqual(viaAlignment, viaDataset);
        // The L = 1 result's locus section mirrors the flat fields.
        ASSERT_EQ(viaDataset.loci.size(), 1u);
        EXPECT_DOUBLE_EQ(viaDataset.loci[0].drivingTheta, viaDataset.finalDrivingTheta);
        EXPECT_EQ(viaDataset.loci[0].summaries.size(), viaDataset.finalSummaries.size());
    }
}

TEST(MultiLocusDriverTest, MultiLocusRunIsBitwiseInvariantToThreadCount) {
    const Dataset ds = simulateDataset(4, 6, 1.0, 180, 55);
    for (const Strategy s : {Strategy::Gmh, Strategy::MultiChain, Strategy::HeatedMh}) {
        const MpcgsOptions o = quickOptions(s);
        ThreadPool pool1(1), pool4(4), pool8(8);
        const MpcgsResult r1 = estimateTheta(ds, o, &pool1);
        const MpcgsResult r4 = estimateTheta(ds, o, &pool4);
        const MpcgsResult r8 = estimateTheta(ds, o, &pool8);
        expectBitwiseEqual(r1, r4);
        expectBitwiseEqual(r1, r8);
        // And the no-pool serial path matches too.
        const MpcgsResult r0 = estimateTheta(ds, o, nullptr);
        expectBitwiseEqual(r1, r0);
    }
}

TEST(MultiLocusDriverTest, EveryLocusContributesSamples) {
    const Dataset ds = simulateDataset(3, 6, 1.0, 150, 56);
    const MpcgsOptions o = quickOptions(Strategy::Gmh);
    const MpcgsResult res = estimateTheta(ds, o);
    ASSERT_EQ(res.loci.size(), 3u);
    std::size_t total = 0;
    for (const LocusFinal& lf : res.loci) {
        EXPECT_FALSE(lf.summaries.empty());
        total += lf.summaries.size();
    }
    EXPECT_EQ(total, res.history.back().samples);
    // Loci are exchangeable but not identical: their samples differ.
    EXPECT_NE(res.loci[0].summaries.front().weightedSum,
              res.loci[1].summaries.front().weightedSum);
}

TEST(MultiLocusDriverTest, MutationScaleShiftsLocusDrivingTheta) {
    Dataset ds;
    ds.add(Locus{"slow", simulateLocus(6, 0.5, 150, 7001), 0.5});
    ds.add(Locus{"fast", simulateLocus(6, 2.0, 150, 7002), 2.0});
    MpcgsOptions o = quickOptions(Strategy::SerialMh);
    const MpcgsResult res = estimateTheta(ds, o);
    ASSERT_EQ(res.loci.size(), 2u);
    // Each locus's final driving theta is mu_l * (shared driving theta).
    const double driving = res.history.back().thetaBefore;
    EXPECT_DOUBLE_EQ(res.loci[0].drivingTheta, 0.5 * driving);
    EXPECT_DOUBLE_EQ(res.loci[1].drivingTheta, 2.0 * driving);
    EXPECT_GT(res.theta, 0.0);
}

// --- pooling accuracy ---------------------------------------------------

TEST(MultiLocusDriverTest, PooledEstimateBeatsWorstSingleLocusRun) {
    // 8 loci simulated under theta* = 1. Single-locus estimates scatter
    // widely (one locus is one genealogy draw); the pooled estimate uses
    // 8 independent genealogies' information and lands closer to theta*
    // than the worst single-locus run — and close in absolute terms.
    const std::size_t L = 8;
    const Dataset ds = simulateDataset(L, 8, 1.0, 200, 90);
    MpcgsOptions o = quickOptions(Strategy::Gmh);
    o.emIterations = 3;
    o.samplesPerIteration = 600;
    ThreadPool pool(8);

    const double pooled = estimateTheta(ds, o, &pool).theta;
    const double pooledErr = std::fabs(std::log(pooled));

    std::vector<double> singleErrs;
    for (std::size_t l = 0; l < L; ++l) {
        Dataset one;
        one.add(ds.locus(l));
        singleErrs.push_back(std::fabs(std::log(estimateTheta(one, o, &pool).theta)));
    }
    std::vector<double> sorted = singleErrs;
    std::sort(sorted.begin(), sorted.end());
    const double worst = sorted.back();
    const double median = 0.5 * (sorted[L / 2 - 1] + sorted[L / 2]);

    EXPECT_LT(pooledErr, worst);
    EXPECT_LT(pooledErr, median + 0.05);  // pooling shrinks the spread
    EXPECT_LT(pooledErr, std::log(1.8));  // within a factor 1.8 of theta*
}

// --- checkpoint v2 / v1 -------------------------------------------------

TEST(MultiLocusCheckpointTest, KillAndResumeIsBitwiseIdentical) {
    const Dataset ds = simulateDataset(3, 6, 1.0, 150, 60);
    MpcgsOptions o = quickOptions(Strategy::MultiChain);
    o.emIterations = 3;

    const MpcgsResult uninterrupted = estimateTheta(ds, o);

    const std::string path = tempPath("multilocus_v2.ckpt");
    MpcgsOptions part1 = o;
    part1.emIterations = 1;  // "crash" after the first EM iteration
    part1.checkpointPath = path;
    part1.checkpointIntervalTicks = 3;
    estimateTheta(ds, part1);

    MpcgsOptions part2 = o;
    part2.checkpointPath = path;
    part2.resume = true;
    const MpcgsResult resumed = estimateTheta(ds, part2);
    expectBitwiseEqual(uninterrupted, resumed);
}

TEST(MultiLocusCheckpointTest, MidSamplingKillAndResumeIsBitwiseIdentical) {
    // Kill a 3-locus MultiLocusRun in the middle of its sampling phase
    // (snapshot every round) and resume to the full cap: every locus's
    // stream of summaries must match the uninterrupted run's bitwise.
    const Dataset ds = simulateDataset(3, 6, 1.0, 120, 64);
    const LocusLikelihoods liks(ds, "F81");
    const std::size_t burnTicks = 4, killTicks = 9, capTicks = 25;

    const auto makeSamplers = [&] {
        std::vector<std::unique_ptr<Sampler>> samplers;
        for (std::size_t l = 0; l < ds.locusCount(); ++l) {
            SamplerSpec spec;
            spec.strategy = Strategy::MultiChain;
            spec.chains = 3;
            spec.seed = locusStreamSeed(17, l);
            samplers.push_back(makeSampler(spec, liks.at(l), 1.0,
                                           initialGenealogy(ds.locus(l).alignment, 1.0),
                                           nullptr));
        }
        return samplers;
    };
    const auto collect = [](const std::vector<SummarySink>& sinks) {
        std::vector<IntervalSummary> all;
        for (const SummarySink& s : sinks) {
            const auto part = s.chainMajor();
            all.insert(all.end(), part.begin(), part.end());
        }
        return all;
    };

    std::vector<IntervalSummary> full;
    {
        auto samplers = makeSamplers();
        std::vector<SummarySink> sinks(3);
        std::vector<ConvergenceMonitor> monitors(3);
        std::vector<LocusSlot> slots(3);
        for (std::size_t l = 0; l < 3; ++l)
            slots[l] = LocusSlot{samplers[l].get(), &sinks[l], &monitors[l]};
        MultiLocusRun::Config cfg;
        cfg.burnInTicks = burnTicks;
        cfg.sampleTicks = capTicks;
        MultiLocusRun run(std::move(slots), cfg);
        run.execute();
        full = collect(sinks);
    }

    const std::string path = tempPath("midphase_v2.ckpt");
    {
        auto samplers = makeSamplers();
        std::vector<SummarySink> sinks(3);
        std::vector<ConvergenceMonitor> monitors(3);
        std::vector<LocusSlot> slots(3);
        for (std::size_t l = 0; l < 3; ++l)
            slots[l] = LocusSlot{samplers[l].get(), &sinks[l], &monitors[l]};
        MultiLocusRun::Config cfg;
        cfg.burnInTicks = burnTicks;
        cfg.sampleTicks = killTicks;  // "crash" mid-phase
        cfg.checkpointInterval = 1;
        cfg.checkpoint = [&](std::size_t burnDone, std::span<const std::uint64_t> sampleDone,
                             std::span<const std::uint8_t> stopped) {
            CheckpointWriter w(path);
            w.u64(burnDone);
            for (std::size_t l = 0; l < 3; ++l) {
                w.u64(sampleDone[l]);
                w.u32(stopped[l]);
            }
            for (const auto& s : samplers) s->save(w);
            for (const SummarySink& s : sinks) s.save(w);
            for (const ConvergenceMonitor& m : monitors) m.save(w);
            w.commit();
        };
        MultiLocusRun run(std::move(slots), cfg);
        run.execute();
    }

    std::vector<IntervalSummary> resumed;
    {
        auto samplers = makeSamplers();
        std::vector<SummarySink> sinks(3);
        std::vector<ConvergenceMonitor> monitors(3);
        CheckpointReader r(path);
        const std::size_t burnDone = r.u64();
        std::vector<std::uint64_t> sampleDone(3);
        std::vector<std::uint8_t> stopped(3);
        for (std::size_t l = 0; l < 3; ++l) {
            sampleDone[l] = r.u64();
            stopped[l] = r.u32() != 0 ? 1 : 0;
            EXPECT_EQ(sampleDone[l], killTicks);
        }
        for (auto& s : samplers) s->load(r);
        for (SummarySink& s : sinks) s.load(r);
        for (ConvergenceMonitor& m : monitors) m.load(r);
        std::vector<LocusSlot> slots(3);
        for (std::size_t l = 0; l < 3; ++l)
            slots[l] = LocusSlot{samplers[l].get(), &sinks[l], &monitors[l]};
        MultiLocusRun::Config cfg;
        cfg.burnInTicks = burnTicks;
        cfg.sampleTicks = capTicks;
        MultiLocusRun run(std::move(slots), cfg);
        run.restoreProgress(burnDone, sampleDone, stopped);
        run.execute();
        resumed = collect(sinks);
    }

    ASSERT_EQ(full.size(), resumed.size());
    for (std::size_t i = 0; i < full.size(); ++i) {
        EXPECT_DOUBLE_EQ(full[i].weightedSum, resumed[i].weightedSum);
        EXPECT_EQ(full[i].events, resumed[i].events);
    }
}

TEST(MultiLocusCheckpointTest, ResumeRejectsWrongLocusRoster) {
    const Dataset ds = simulateDataset(2, 6, 1.0, 120, 61);
    MpcgsOptions o = quickOptions(Strategy::SerialMh);
    o.checkpointPath = tempPath("roster.ckpt");
    o.checkpointIntervalTicks = 5;
    estimateTheta(ds, o);

    MpcgsOptions resumeOpts = o;
    resumeOpts.resume = true;
    const Dataset other = simulateDataset(3, 6, 1.0, 120, 61);
    EXPECT_THROW(estimateTheta(other, resumeOpts), ConfigError);
}

TEST(MultiLocusCheckpointTest, V1SingleLocusSnapshotStillReads) {
    // Synthesize a version-1 (pre-multi-locus) iteration-boundary snapshot
    // for the start of a run and resume from it: the result must be
    // bitwise identical to the uninterrupted run, proving the v1 layout
    // (no locus roster, single genealogy) still loads.
    const Alignment aln = simulateLocus(6, 1.0, 150, 62);
    MpcgsOptions o = quickOptions(Strategy::MultiChain);
    const MpcgsResult uninterrupted = estimateTheta(aln, o);

    const std::string path = tempPath("v1compat.ckpt");
    {
        CheckpointWriter w(path, /*version=*/1);
        // v1 fingerprint: options tail is (sequence count, length).
        w.u32(static_cast<std::uint32_t>(o.strategy));
        w.u64(o.seed);
        w.u64(o.samplesPerIteration);
        w.u64(o.burnInFraction1000);
        w.u64(o.gmhProposals);
        w.u64(o.gmhSamplesPerSet);
        w.u64(o.chains);
        w.doubles(o.temperatures);
        w.str(o.substModel);
        w.u32(o.cachedBaseline ? 1 : 0);
        w.f64(o.theta0);
        w.f64(o.stopRhat);
        w.f64(o.stopEss);
        w.u64(aln.sequenceCount());
        w.u64(aln.length());
        // v1 payload: iteration-boundary snapshot at the very start.
        w.u64(0);        // emIndex
        w.f64(o.theta0); // driving theta
        w.u64(0);        // empty history
        writeGenealogy(w, initialGenealogy(aln, o.theta0));
        w.u32(0);        // phase: iteration boundary
        w.commit();
    }
    {
        CheckpointReader probe(path);
        EXPECT_EQ(probe.version(), 1u);
    }

    MpcgsOptions resumeOpts = o;
    resumeOpts.checkpointPath = path;
    resumeOpts.resume = true;
    const MpcgsResult resumed = estimateTheta(aln, resumeOpts);
    expectBitwiseEqual(uninterrupted, resumed);
}

TEST(MultiLocusCheckpointTest, UnsupportedVersionIsRejected) {
    const std::string path = tempPath("futureversion.ckpt");
    {
        CheckpointWriter w(path, kCheckpointVersion + 1);
        w.u64(0);
        w.commit();
    }
    EXPECT_THROW(CheckpointReader r(path), CheckpointError);
}

// --- option validation (satellite) -------------------------------------

TEST(OptionValidationTest, InvalidOptionsAreRejectedUpFront) {
    MpcgsOptions good;
    EXPECT_NO_THROW(validateOptions(good));

    MpcgsOptions o = good;
    o.temperatures.clear();
    EXPECT_THROW(validateOptions(o), ConfigError);

    o = good;
    o.temperatures = {1.3, 1.0};  // ladder must start at the cold chain
    EXPECT_THROW(validateOptions(o), ConfigError);

    o = good;
    o.chains = 0;
    EXPECT_THROW(validateOptions(o), ConfigError);

    o = good;
    o.gmhSamplesPerSet = 0;
    EXPECT_THROW(validateOptions(o), ConfigError);

    o = good;
    o.gmhProposals = 0;
    EXPECT_THROW(validateOptions(o), ConfigError);

    o = good;
    o.burnInFraction1000 = 1001;
    EXPECT_THROW(validateOptions(o), ConfigError);

    o = good;
    o.theta0 = 0.0;
    EXPECT_THROW(validateOptions(o), ConfigError);

    o = good;
    o.resume = true;  // without a checkpoint path
    EXPECT_THROW(validateOptions(o), ConfigError);
}

TEST(OptionValidationTest, AlgoMismatchedFlagsAreHardRejected) {
    const auto parse = [](std::vector<const char*> argv) {
        argv.insert(argv.begin(), "mpcgs");
        return Options::parse(static_cast<int>(argv.size()), argv.data());
    };

    // Matched flags pass for every mode.
    EXPECT_NO_THROW(validateAlgoFlags(parse({"--strategy", "gmh", "--samples", "10"}), "mcmc"));
    EXPECT_NO_THROW(
        validateAlgoFlags(parse({"--particles", "64", "--ess-threshold", "1.0"}), "smc"));
    EXPECT_NO_THROW(validateAlgoFlags(
        parse({"--pmmh-sigma", "0.3", "--chains", "2", "--particles", "32"}), "pmmh"));
    EXPECT_NO_THROW(
        validateAlgoFlags(parse({"--mig-init", "1.5", "--em", "2"}), "structured"));
    // Mode-agnostic flags are never rejected.
    EXPECT_NO_THROW(validateAlgoFlags(
        parse({"--threads", "4", "--seed", "1", "--checkpoint", "x.mpck"}), "smc"));

    // Mismatches throw ConfigError naming the flag and applicable modes.
    EXPECT_THROW(validateAlgoFlags(parse({"--ess-threshold", "1.0"}), "mcmc"), ConfigError);
    EXPECT_THROW(validateAlgoFlags(parse({"--strategy", "gmh"}), "smc"), ConfigError);
    EXPECT_THROW(validateAlgoFlags(parse({"--samples", "100"}), "smc"), ConfigError);
    EXPECT_THROW(validateAlgoFlags(parse({"--pmmh-sigma", "0.3"}), "smc"), ConfigError);
    EXPECT_THROW(validateAlgoFlags(parse({"--curve", "c.csv"}), "pmmh"), ConfigError);
    EXPECT_THROW(validateAlgoFlags(parse({"--mig-init", "1.5"}), "mcmc"), ConfigError);
    EXPECT_THROW(validateAlgoFlags(parse({"--cached-baseline"}), "structured"), ConfigError);
    try {
        validateAlgoFlags(parse({"--ess-threshold", "1.0"}), "mcmc");
        FAIL() << "mismatched flag was not rejected";
    } catch (const ConfigError& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("--ess-threshold"), std::string::npos) << what;
        EXPECT_NE(what.find("smc"), std::string::npos) << what;
        EXPECT_NE(what.find("pmmh"), std::string::npos) << what;
    }
}

TEST(OptionValidationTest, EstimateThetaValidatesEvenForUnaffectedStrategies) {
    // The checks are unconditional: a SerialMh run with a broken ladder
    // or zero chains is rejected rather than silently ignored.
    const Alignment aln = simulateLocus(4, 1.0, 80, 63);
    MpcgsOptions o = quickOptions(Strategy::SerialMh);
    o.chains = 0;
    EXPECT_THROW(estimateTheta(aln, o), ConfigError);
    o = quickOptions(Strategy::SerialMh);
    o.temperatures = {2.0};
    EXPECT_THROW(estimateTheta(aln, o), ConfigError);
}

}  // namespace
}  // namespace mpcgs
