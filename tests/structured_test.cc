// Structured (two-population migration) coalescent: model validation,
// prior reduction to Kingman at K = 1, simulator label consistency,
// sufficient-statistic identities, exact proposal densities (sample vs
// replay), MH invariance against the simulator, serialization round-trips,
// and bitwise thread-count invariance + checkpoint resume of the full
// structured estimator.
#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "coalescent/prior.h"
#include "coalescent/simulator.h"
#include "coalescent/structured.h"
#include "core/structured_estimator.h"
#include "core/structured_problem.h"
#include "core/structured_recoalesce.h"
#include "core/structured_sampler.h"
#include "lik/locus_likelihoods.h"
#include "mcmc/checkpoint.h"
#include "mcmc/mh.h"
#include "rng/mt19937.h"
#include "seq/seqgen.h"
#include "util/error.h"

namespace mpcgs {
namespace {

MigrationModel twoDeme(double th1, double th2, double m12, double m21) {
    MigrationModel m(2, 1.0, 1.0);
    m.theta = {th1, th2};
    m.setRate(0, 1, m12);
    m.setRate(1, 0, m21);
    return m;
}

std::vector<int> halfAndHalf(int n) {
    std::vector<int> demes(static_cast<std::size_t>(n), 0);
    for (int i = n / 2; i < n; ++i) demes[static_cast<std::size_t>(i)] = 1;
    return demes;
}

TEST(MigrationModelTest, ValidateRejectsNonsense) {
    EXPECT_THROW(MigrationModel(2, -1.0, 0.5).validate(), ConfigError);
    EXPECT_THROW(MigrationModel(2, 1.0, 0.0).validate(), ConfigError);
    EXPECT_THROW(MigrationModel(2, 1.0, -0.5).validate(), ConfigError);
    EXPECT_NO_THROW(MigrationModel(2, 1.0, 0.5).validate());
    EXPECT_NO_THROW(MigrationModel(1, 2.0, 0.0).validate());
    MigrationModel empty;
    EXPECT_THROW(empty.validate(), ConfigError);
}

TEST(StructuredPriorTest, SingleDemeReducesToKingman) {
    Mt19937 rng(7);
    for (int rep = 0; rep < 20; ++rep) {
        const double theta = 0.5 + rep * 0.1;
        const Genealogy g = simulateCoalescent(6, theta, rng);
        const StructuredGenealogy sg(g);  // every node in deme 0, no events
        MigrationModel m(1, theta, 0.0);
        EXPECT_NEAR(logStructuredPrior(sg, m), logCoalescentPrior(g, theta), 1e-9);
    }
}

TEST(StructuredPriorTest, InconsistentLabellingIsImpossible) {
    Mt19937 rng(9);
    const Genealogy g = simulateCoalescent(4, 1.0, rng);
    StructuredGenealogy sg(g);
    sg.setDeme(0, 1);  // tip in deme 1, no migration path to its parent's deme 0
    const MigrationModel m = twoDeme(1.0, 1.0, 0.5, 0.5);
    EXPECT_FALSE(sg.consistent(2));
    EXPECT_EQ(logStructuredPrior(sg, m), -std::numeric_limits<double>::infinity());
}

TEST(StructuredSimulatorTest, ProducesConsistentLabelledGenealogies) {
    Mt19937 rng(11);
    const MigrationModel m = twoDeme(1.0, 2.0, 0.7, 0.4);
    for (int rep = 0; rep < 50; ++rep) {
        const auto demes = halfAndHalf(8);
        const StructuredGenealogy g = simulateStructuredCoalescent(demes, m, rng);
        ASSERT_NO_THROW(g.validate(2));
        for (int i = 0; i < 8; ++i) EXPECT_EQ(g.deme(i), demes[static_cast<std::size_t>(i)]);
        EXPECT_TRUE(std::isfinite(logStructuredPrior(g, m)));
    }
}

TEST(StructuredSummaryTest, IdentitiesHold) {
    Mt19937 rng(13);
    const MigrationModel m = twoDeme(1.0, 1.5, 0.6, 0.9);
    for (int rep = 0; rep < 20; ++rep) {
        const StructuredGenealogy g = simulateStructuredCoalescent(halfAndHalf(10), m, rng);
        const StructuredSummary s = StructuredSummary::fromGenealogy(g, 2);
        // n - 1 coalescences in total.
        EXPECT_DOUBLE_EQ(s.coal[0] + s.coal[1], 9.0);
        // Total lineage-time equals the tree's total branch length.
        EXPECT_NEAR(s.U[0] + s.U[1], g.tree().totalBranchLength(), 1e-9);
        // Migration counts match the genealogy's event lists.
        EXPECT_DOUBLE_EQ(s.mig[1] + s.mig[2],
                         static_cast<double>(g.migrationCount()));
    }
}

TEST(StructuredSummaryTest, PriorFromSummaryMatchesDirectSweep) {
    // The prior is defined through the summary; cross-check against an
    // independently composed model (different parameters than simulated).
    Mt19937 rng(15);
    const MigrationModel sim = twoDeme(1.0, 1.0, 0.5, 0.5);
    const MigrationModel eval = twoDeme(0.7, 2.0, 0.3, 1.1);
    const StructuredGenealogy g = simulateStructuredCoalescent(halfAndHalf(6), sim, rng);
    const StructuredSummary s = StructuredSummary::fromGenealogy(g, 2);
    const double fromSummary = logStructuredPrior(s, eval);
    const double fromGenealogy = logStructuredPrior(g, eval);
    EXPECT_NEAR(fromSummary, fromGenealogy, 1e-9);
}

TEST(TwoDemeTransitionTest, RowsSumToOneAndConverge) {
    const MigrationModel m = twoDeme(1.0, 1.0, 0.8, 0.3);
    for (const double T : {0.1, 1.0, 10.0}) {
        EXPECT_NEAR(twoDemeTransitionProb(m, 0, 0, T) + twoDemeTransitionProb(m, 0, 1, T),
                    1.0, 1e-12);
        EXPECT_NEAR(twoDemeTransitionProb(m, 1, 0, T) + twoDemeTransitionProb(m, 1, 1, T),
                    1.0, 1e-12);
    }
    // T -> inf: stationary (M21, M12) / (M12 + M21).
    EXPECT_NEAR(twoDemeTransitionProb(m, 0, 0, 1e3), 0.3 / 1.1, 1e-9);
    EXPECT_NEAR(twoDemeTransitionProb(m, 1, 0, 1e3), 0.3 / 1.1, 1e-9);
}

TEST(StructuredLineageIndexTest, SampledPathDensityMatchesReplay) {
    // The forward sampler's reported density must equal the replay density
    // of the same realization — the identity the Hastings ratio relies on.
    Mt19937 rng(17);
    const MigrationModel m = twoDeme(1.0, 1.6, 0.5, 0.8);
    const StructuredGenealogy g = simulateStructuredCoalescent(halfAndHalf(6), m, rng);
    const StructuredLineageIndex index(g, g.tree().root(), m);
    for (int rep = 0; rep < 200; ++rep) {
        const auto path = index.samplePath(0.0, rep % 2, rng);
        const double replay = index.logPathDensity(0.0, rep % 2, path.events,
                                                   path.attachTime, path.attachNode);
        ASSERT_TRUE(std::isfinite(path.logDensity));
        EXPECT_NEAR(replay, path.logDensity, 1e-8);
    }
}

TEST(StructuredRecoalesceTest, ProposalsAreValidAndDensitiesFinite) {
    Mt19937 rng(19);
    const MigrationModel m = twoDeme(1.0, 1.2, 0.6, 0.6);
    StructuredGenealogy g = simulateStructuredCoalescent(halfAndHalf(6), m, rng);
    int reachable = 0;
    for (int rep = 0; rep < 500; ++rep) {
        StructuredProposal p = proposeStructuredRecoalesce(g, m, rng);
        ASSERT_NO_THROW(p.state.validate(2));
        ASSERT_TRUE(std::isfinite(p.logForward));
        if (std::isfinite(p.logReverse)) {
            ++reachable;
            g = std::move(p.state);  // random walk across valid states
        }
    }
    // The -inf reverse case (root dissolution destroying sibling events)
    // must be rare, not the norm.
    EXPECT_GT(reachable, 350);
}

TEST(StructuredRecoalesceTest, PathRefreshKeepsTreeAndMovesLabels) {
    Mt19937 rng(21);
    const MigrationModel m = twoDeme(1.0, 1.0, 0.8, 0.8);
    const StructuredGenealogy g = simulateStructuredCoalescent(halfAndHalf(6), m, rng);
    int consistentCount = 0;
    for (int rep = 0; rep < 300; ++rep) {
        StructuredProposal p = proposeMigrationPathRefresh(g, m, rng);
        EXPECT_EQ(p.state.tree(), g.tree());  // topology and times untouched
        EXPECT_TRUE(std::isfinite(p.logForward));
        EXPECT_TRUE(std::isfinite(p.logReverse));
        if (p.state.consistent(2)) ++consistentCount;
    }
    EXPECT_GT(consistentCount, 50);  // free paths frequently land correctly
}

/// Prior-only MH problem: with a flat data term, the chain must sample the
/// structured-coalescent prior itself, so long-run moments have to match
/// direct simulation — the strongest available check that both proposal
/// densities are exact.
struct PriorOnlyProblem {
    using State = StructuredGenealogy;
    MigrationModel model;

    double logPosterior(const State& g) const { return logStructuredPrior(g, model); }
    struct Proposal {
        State state;
        double logForward;
        double logReverse;
    };
    Proposal propose(const State& cur, Rng& rng) const {
        StructuredProposal p = rng.uniform01() < 0.3
                                   ? proposeMigrationPathRefresh(cur, model, rng)
                                   : proposeStructuredRecoalesce(cur, model, rng);
        return Proposal{std::move(p.state), p.logForward, p.logReverse};
    }
};

TEST(StructuredMhTest, SingleDemeRecoalescenceAcceptsExactly) {
    // With one deme the structured prior factorizes so that the proposal
    // density IS the conditional prior: under a prior-only target every
    // recoalescence proposal must be accepted (log Hastings ratio == 0
    // exactly). The sharpest available check that the densities are right.
    MigrationModel m(1, 1.3, 0.0);
    Mt19937 rng(27);
    StructuredGenealogy g(simulateCoalescent(7, 1.3, rng));
    for (int i = 0; i < 2000; ++i) {
        StructuredProposal p = proposeStructuredRecoalesce(g, m, rng);
        const double logRatio = (logStructuredPrior(p.state, m) + p.logReverse) -
                                (logStructuredPrior(g, m) + p.logForward);
        ASSERT_NEAR(logRatio, 0.0, 1e-8);
        g = std::move(p.state);
    }
}

TEST(StructuredMhTest, PriorOnlyChainMatchesSimulatorMoments) {
    // Sampling the prior itself through the MH kernel: pooled long-run
    // moments must match direct simulation (a 48M-step offline run agrees
    // to 0.3%). Root-height statistics mix slowly, so this deterministic
    // check pools independent chains on a small problem and allows a
    // tolerance a few Monte-Carlo standard errors wide.
    const MigrationModel m = twoDeme(1.0, 1.4, 0.8, 0.6);
    const auto demes = halfAndHalf(4);

    Mt19937 simRng(23);
    double simTmrca = 0.0, simMig = 0.0;
    const int reps = 20000;
    for (int i = 0; i < reps; ++i) {
        const StructuredGenealogy g = simulateStructuredCoalescent(demes, m, simRng);
        simTmrca += g.tree().tmrca();
        simMig += static_cast<double>(g.migrationCount());
    }
    simTmrca /= reps;
    simMig /= reps;

    double mhTmrca = 0.0, mhMig = 0.0, accepted = 0.0, steps = 0.0;
    long total = 0;
    for (unsigned c = 0; c < 12; ++c) {
        Mt19937 initRng(500 + c);
        PriorOnlyProblem problem{m};
        MhChain<PriorOnlyProblem> chain(problem,
                                        simulateStructuredCoalescent(demes, m, initRng),
                                        Mt19937(600 + c));
        for (int i = 0; i < 5000; ++i) chain.step();
        for (int i = 0; i < 120000; ++i) {
            chain.step();
            mhTmrca += chain.current().tree().tmrca();
            mhMig += static_cast<double>(chain.current().migrationCount());
            ++total;
        }
        accepted += static_cast<double>(chain.acceptedCount());
        steps += static_cast<double>(chain.steps());
    }
    mhTmrca /= static_cast<double>(total);
    mhMig /= static_cast<double>(total);

    EXPECT_GT(accepted / steps, 0.5);
    EXPECT_NEAR(mhTmrca, simTmrca, 0.08 * simTmrca);
    EXPECT_NEAR(mhMig, simMig, 0.08 * simMig);
}

TEST(StructuredCheckpointTest, LabelledGenealogyRoundTripsExactly) {
    Mt19937 rng(37);
    const MigrationModel m = twoDeme(1.0, 2.0, 0.5, 0.9);
    const StructuredGenealogy g = simulateStructuredCoalescent(halfAndHalf(8), m, rng);
    const std::string path = ::testing::TempDir() + "structured_roundtrip.mpck";
    {
        CheckpointWriter w(path);
        writeStructuredGenealogy(w, g);
        w.commit();
    }
    CheckpointReader r(path);
    EXPECT_EQ(r.version(), kCheckpointVersion);
    const StructuredGenealogy back = readStructuredGenealogy(r, 2);
    EXPECT_EQ(back, g);
}

TEST(StructuredCoordinateTest, FlattenedCoordinatesRoundTrip) {
    MigrationModel m = twoDeme(1.0, 2.0, 0.5, 0.9);
    ASSERT_EQ(structuredCoordinateCount(2), 4);
    EXPECT_DOUBLE_EQ(getStructuredCoordinate(m, 0), 1.0);
    EXPECT_DOUBLE_EQ(getStructuredCoordinate(m, 1), 2.0);
    EXPECT_DOUBLE_EQ(getStructuredCoordinate(m, 2), 0.5);
    EXPECT_DOUBLE_EQ(getStructuredCoordinate(m, 3), 0.9);
    setStructuredCoordinate(m, 3, 1.7);
    EXPECT_DOUBLE_EQ(m.rate(1, 0), 1.7);
    EXPECT_EQ(structuredCoordinateName(2, 0), "theta_1");
    EXPECT_EQ(structuredCoordinateName(2, 2), "M_12");
    EXPECT_EQ(structuredCoordinateName(2, 3), "M_21");
}

TEST(StructuredMleTest, PriorSamplesGiveFlatRelativeLikelihood) {
    // With samples drawn FROM the prior at the driving values, the
    // importance-sampling estimator targets E[P(G|m)/P(G|driving)] =
    // integral of the normalized density P(.|m) = 1 for EVERY model m —
    // log L must be ~0 across nearby models. This checks the prior is a
    // correctly normalized density and the log-space mean is right.
    Mt19937 rng(41);
    const MigrationModel driving = twoDeme(1.0, 1.0, 0.6, 0.6);
    std::vector<StructuredSummary> samples;
    for (int i = 0; i < 4000; ++i)
        samples.push_back(StructuredSummary::fromGenealogy(
            simulateStructuredCoalescent(halfAndHalf(8), driving, rng), 2));
    const StructuredRelativeLikelihood rl(std::move(samples), driving);
    EXPECT_NEAR(rl.logL(driving), 0.0, 1e-12);  // ratio is exactly 1 at the driving model
    EXPECT_NEAR(rl.logL(twoDeme(1.15, 1.0, 0.6, 0.6)), 0.0, 0.1);
    EXPECT_NEAR(rl.logL(twoDeme(1.0, 0.85, 0.6, 0.6)), 0.0, 0.1);
    EXPECT_NEAR(rl.logL(twoDeme(1.0, 1.0, 0.7, 0.6)), 0.0, 0.1);
    EXPECT_NEAR(rl.logL(twoDeme(1.0, 1.0, 0.6, 0.5)), 0.0, 0.1);
}

class StructuredEstimatorTest : public ::testing::Test {
  protected:
    static StructuredOptions smallOptions() {
        StructuredOptions opts;
        opts.init = twoDeme(1.0, 1.0, 0.5, 0.5);
        opts.emIterations = 2;
        opts.samplesPerIteration = 300;
        opts.chains = 2;
        opts.seed = 4242;
        return opts;
    }

    static Alignment smallData() {
        Mt19937 rng(43);
        const MigrationModel truth = twoDeme(1.0, 1.0, 0.5, 0.5);
        StructuredGenealogy g = simulateStructuredCoalescent(halfAndHalf(6), truth, rng);
        SeqGenOptions so;
        so.length = 200;
        const auto model = makeF84(2.0, kUniformFreqs);
        return simulateSequences(g.tree(), *model, so, rng);
    }
};

TEST_F(StructuredEstimatorTest, ResultsAreBitwiseThreadCountInvariant) {
    const Alignment aln = smallData();
    const auto demes = halfAndHalf(6);
    const StructuredOptions opts = smallOptions();

    const StructuredResult serial = estimateStructured(aln, demes, opts, nullptr);
    for (const unsigned workers : {1u, 4u, 8u}) {
        ThreadPool pool(workers);
        const StructuredResult parallel = estimateStructured(aln, demes, opts, &pool);
        ASSERT_EQ(parallel.estimate, serial.estimate) << workers << " workers";
        ASSERT_EQ(parallel.history.size(), serial.history.size());
        for (std::size_t i = 0; i < serial.history.size(); ++i) {
            EXPECT_EQ(parallel.history[i].before, serial.history[i].before);
            EXPECT_EQ(parallel.history[i].after, serial.history[i].after);
            EXPECT_EQ(parallel.history[i].samples, serial.history[i].samples);
        }
        ASSERT_EQ(parallel.support.size(), serial.support.size());
        for (std::size_t c = 0; c < serial.support.size(); ++c) {
            EXPECT_EQ(parallel.support[c].lower, serial.support[c].lower);
            EXPECT_EQ(parallel.support[c].upper, serial.support[c].upper);
        }
    }
}

TEST_F(StructuredEstimatorTest, EmBoundaryResumeIsBitwiseIdentical) {
    const Alignment aln = smallData();
    const auto demes = halfAndHalf(6);

    StructuredOptions full = smallOptions();
    full.emIterations = 3;
    const StructuredResult uninterrupted = estimateStructured(aln, demes, full);

    const std::string path = ::testing::TempDir() + "structured_resume.mpck";
    StructuredOptions part1 = full;
    part1.emIterations = 2;
    part1.checkpointPath = path;
    part1.checkpointIntervalTicks = 7;
    estimateStructured(aln, demes, part1);

    StructuredOptions part2 = full;
    part2.checkpointPath = path;
    part2.resume = true;
    const StructuredResult resumed = estimateStructured(aln, demes, part2);

    ASSERT_EQ(resumed.estimate, uninterrupted.estimate);
    ASSERT_EQ(resumed.history.size(), uninterrupted.history.size());
    for (std::size_t i = 0; i < resumed.history.size(); ++i) {
        EXPECT_EQ(resumed.history[i].before, uninterrupted.history[i].before);
        EXPECT_EQ(resumed.history[i].after, uninterrupted.history[i].after);
    }
    std::remove(path.c_str());
}

TEST_F(StructuredEstimatorTest, RejectsBadConfigurations) {
    const Alignment aln = smallData();
    StructuredOptions opts = smallOptions();

    std::vector<int> demes = halfAndHalf(6);
    demes[0] = 7;  // out of range
    EXPECT_THROW(estimateStructured(aln, demes, opts), ConfigError);

    EXPECT_THROW(estimateStructured(aln, {0, 1, 0}, opts), ConfigError);  // wrong count

    const std::vector<int> oneDeme(6, 0);
    EXPECT_THROW(estimateStructured(aln, oneDeme, opts), ConfigError);

    opts.emIterations = 0;
    EXPECT_THROW(validateStructuredOptions(opts), ConfigError);
    opts = smallOptions();
    opts.init = twoDeme(1.0, 1.0, 0.5, -0.5);
    EXPECT_THROW(validateStructuredOptions(opts), ConfigError);
    opts = smallOptions();
    opts.resume = true;  // no checkpoint path
    EXPECT_THROW(validateStructuredOptions(opts), ConfigError);
}

}  // namespace
}  // namespace mpcgs
