// Cross-module property tests: randomized round-trips and distributional
// identities that tie several subsystems together.
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "coalescent/death_process.h"
#include "coalescent/prior.h"
#include "coalescent/simulator.h"
#include "core/genealogy_problem.h"
#include "lik/felsenstein.h"
#include "mcmc/gmh.h"
#include "mcmc/mh.h"
#include "phylo/newick.h"
#include "rng/mt19937.h"
#include "rng/philox.h"
#include "seq/phylip.h"
#include "seq/seqgen.h"
#include "seq/subst_model.h"
#include "util/stats.h"

namespace mpcgs {
namespace {

// --- Newick round-trip over random coalescent trees --------------------------

class NewickRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(NewickRoundTrip, PreservesTimesAndTopology) {
    const int n = GetParam();
    Mt19937 rng(static_cast<unsigned>(100 + n));
    for (int rep = 0; rep < 10; ++rep) {
        const Genealogy g = simulateCoalescent(n, 0.8, rng);
        const Genealogy back = fromNewick(toNewick(g));
        ASSERT_EQ(back.tipCount(), n);
        EXPECT_NEAR(back.tmrca(), g.tmrca(), 1e-7 * g.tmrca());
        // Parent height of every named tip survives the round trip — a
        // topology fingerprint.
        for (int tip = 0; tip < n; ++tip) {
            const NodeId orig = tip;
            const NodeId mapped = back.tipByName(g.tipNames()[static_cast<std::size_t>(tip)]);
            ASSERT_NE(mapped, kNoNode);
            EXPECT_NEAR(back.node(back.node(mapped).parent).time,
                        g.node(g.node(orig).parent).time, 1e-7 * g.tmrca());
        }
        // Interval structure (and therefore the prior) is preserved.
        EXPECT_NEAR(logCoalescentPrior(back, 1.0), logCoalescentPrior(g, 1.0), 1e-6);
    }
}

INSTANTIATE_TEST_SUITE_P(TreeSizes, NewickRoundTrip, ::testing::Values(2, 3, 5, 8, 16, 64));

// --- PHYLIP round-trip over random alignments --------------------------------

class PhylipRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PhylipRoundTrip, PreservesEverySequence) {
    const std::size_t length = GetParam();
    Mt19937 rng(7);
    const Genealogy g = simulateCoalescent(6, 1.0, rng);
    const auto model = makeHky85(3.0, BaseFreqs{0.4, 0.1, 0.15, 0.35});
    const Alignment aln = simulateSequences(g, *model, {length, 1.0}, rng);
    const Alignment back = readPhylipString(writePhylipString(aln));
    ASSERT_EQ(back.sequenceCount(), aln.sequenceCount());
    for (std::size_t i = 0; i < aln.sequenceCount(); ++i)
        EXPECT_EQ(back.sequence(i).toString(), aln.sequence(i).toString());
}

INSTANTIATE_TEST_SUITE_P(Lengths, PhylipRoundTrip, ::testing::Values(1u, 33u, 64u, 200u, 1001u));

// --- seq-gen divergence matches the analytic transition probabilities --------

TEST(SeqgenProperty, PairwiseDivergenceMatchesModel) {
    // Two tips at height t: P(site differs) = sum_x pi_x (1 - P_xx(2t)).
    Genealogy g(2);
    const double t = 0.35;
    g.node(2).time = t;
    g.link(2, 0);
    g.link(2, 1);
    g.setRoot(2);

    const BaseFreqs pi{0.3, 0.2, 0.3, 0.2};
    const auto model = makeF84(2.0, pi);
    const Matrix4 p2t = model->transition(2.0 * t);
    double expectDiff = 0.0;
    for (std::size_t x = 0; x < 4; ++x) expectDiff += pi[x] * (1.0 - p2t(x, x));

    Mt19937 rng(9);
    RunningStats frac;
    for (int rep = 0; rep < 100; ++rep) {
        const Alignment aln = simulateSequences(g, *model, {400, 1.0}, rng);
        frac.add(static_cast<double>(aln.sequence(0).hammingDistance(aln.sequence(1))) / 400.0);
    }
    EXPECT_NEAR(frac.mean(), expectDiff, 0.01);
}

TEST(SeqgenProperty, BaseCompositionMatchesStationary) {
    Mt19937 rng(10);
    const Genealogy g = simulateCoalescent(8, 1.0, rng);
    const BaseFreqs pi{0.45, 0.05, 0.25, 0.25};
    const auto model = makeHky85(2.0, pi);
    const Alignment aln = simulateSequences(g, *model, {5000, 1.0}, rng);
    const BaseFreqs observed = aln.baseFrequencies();
    for (std::size_t x = 0; x < 4; ++x) EXPECT_NEAR(observed[x], pi[x], 0.02);
}

// --- death process generalizes beyond three actives ---------------------------

TEST(DeathProcessProperty, RowSumsForLargerActiveCounts) {
    for (int a = 1; a <= 6; ++a) {
        for (const int m : {0, 2}) {
            for (const double t : {0.05, 0.4, 2.0}) {
                double sum = 0.0;
                for (int b = 1; b <= a; ++b)
                    sum += DeathProcess::transitionProb(a, b, t, m, 1.0);
                EXPECT_NEAR(sum, 1.0, 1e-9) << "a=" << a << " m=" << m << " t=" << t;
            }
        }
    }
}

TEST(DeathProcessProperty, ChapmanKolmogorovAtFiveActives) {
    const int m = 1;
    const double theta = 0.7, s = 0.2, t = 0.35;
    for (int b = 1; b <= 5; ++b) {
        double conv = 0.0;
        for (int k = b; k <= 5; ++k)
            conv += DeathProcess::transitionProb(5, k, s, m, theta) *
                    DeathProcess::transitionProb(k, b, t, m, theta);
        EXPECT_NEAR(conv, DeathProcess::transitionProb(5, b, s + t, m, theta), 1e-9);
    }
}

TEST(DeathProcessProperty, FiveLineageRegionSamplesConsistently) {
    // A 5-active bounded region (beyond the neighbourhood kernel's 3):
    // the machinery is generic and must stay normalized.
    std::vector<FeasibleInterval> ivs{
        {0.0, 0.3, 2, 3},
        {0.3, 0.6, 1, 1},
        {0.6, 2.0, 0, 1},
    };
    const DeathProcess dp(std::move(ivs), 1.0);
    EXPECT_EQ(dp.totalActive(), 5);
    EXPECT_GT(dp.completionProbability(), 0.0);
    Mt19937 rng(11);
    for (int rep = 0; rep < 300; ++rep) {
        const auto times = dp.sampleMergeTimes(rng);
        ASSERT_EQ(times.size(), 4u);
        for (std::size_t i = 1; i < times.size(); ++i) EXPECT_LT(times[i - 1], times[i]);
        EXPECT_LT(times.back(), 2.0);
        EXPECT_GT(dp.logDensity(times), -std::numeric_limits<double>::infinity());
    }
}

// --- samplers agree on the same genealogy posterior ---------------------------

TEST(SamplerAgreement, GmhAndMhSampleTheSamePosterior) {
    Mt19937 rng(12);
    const Genealogy truth = simulateCoalescent(7, 1.0, rng);
    const auto gen = makeJc69();
    const Alignment data = simulateSequences(truth, *gen, {250, 1.0}, rng);
    const F81Model model(data.baseFrequencies());
    const DataLikelihood lik(data, model);
    const double theta = 1.0;

    Genealogy init = simulateCoalescent(7, theta, rng);
    init.setTipNames(data.names());

    RunningStats mhT, gmhT;
    {
        const MhGenealogyProblem problem(lik, theta);
        MhChain<MhGenealogyProblem> chain(problem, init, 13);
        chain.run(3000, 30000, [&](const Genealogy& g) { mhT.add(g.tmrca()); });
    }
    {
        const GmhGenealogyProblem problem(lik, theta);
        GmhOptions opts;
        opts.numProposals = 16;
        opts.samplesPerIteration = 16;
        opts.seed = 14;
        GmhSampler<GmhGenealogyProblem> sampler(problem, opts);
        sampler.run(init, 200, 2000, [&](const Genealogy& g) { gmhT.add(g.tmrca()); });
    }
    // Same target: posterior mean TMRCA agrees within sampling error.
    EXPECT_NEAR(gmhT.mean(), mhT.mean(), 0.15 * mhT.mean());
}

// --- RNG stream independence across the proposal grid -------------------------

TEST(PhiloxProperty, GridOfStreamsIsPairwiseDecorrelated) {
    // Correlation across the (iteration, proposal) keying used by the GMH
    // engine: adjacent streams share nothing detectable.
    const int streams = 32, draws = 2000;
    std::vector<std::vector<double>> u(streams);
    for (int s = 0; s < streams; ++s) {
        Philox rng(99, static_cast<std::uint64_t>(s));
        for (int d = 0; d < draws; ++d) u[static_cast<std::size_t>(s)].push_back(rng.uniform01());
    }
    for (int s = 1; s < streams; ++s) {
        const double r = pearson(u[static_cast<std::size_t>(s - 1)], u[static_cast<std::size_t>(s)]);
        EXPECT_LT(std::fabs(r), 0.08) << "streams " << s - 1 << "," << s;
    }
}

}  // namespace
}  // namespace mpcgs
