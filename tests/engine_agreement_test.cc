// Scalar-vs-vectorized agreement suite: the pattern-major engine (both the
// stateless full-recomputation path and the cached arena path) must
// reproduce the original one-pattern-at-a-time scalar pruning to 1e-10,
// across random genealogies/alignments, rescaling-triggering deep trees,
// unknown-tip marginalization, and rate heterogeneity — and the cached MH
// sampler must make bit-identical accept/reject decisions.
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "coalescent/prior.h"
#include "coalescent/simulator.h"
#include "core/cached_mh.h"
#include "core/recoalesce.h"
#include "lik/felsenstein.h"
#include "rng/mt19937.h"
#include "seq/seqgen.h"
#include "seq/subst_model.h"
#include "util/error.h"

namespace mpcgs {
namespace {

/// Random dataset with a sprinkling of unknown sites (every `nEvery`-th
/// site of every `sEvery`-th sequence becomes N).
Alignment randomData(int n, std::size_t length, unsigned seed, std::size_t nEvery = 0,
                     std::size_t sEvery = 3) {
    Mt19937 rng(seed);
    const Genealogy truth = simulateCoalescent(n, 1.0, rng);
    const auto gen = makeF84(2.0, kUniformFreqs);
    Alignment aln = simulateSequences(truth, *gen, {length, 1.0}, rng);
    if (nEvery == 0) return aln;
    std::vector<Sequence> seqs;
    for (std::size_t s = 0; s < aln.sequenceCount(); ++s) {
        std::string chars = aln.sequence(s).toString();
        if (s % sEvery == 0)
            for (std::size_t i = 0; i < chars.size(); i += nEvery) chars[i] = 'N';
        seqs.push_back(Sequence::fromString(aln.sequence(s).name(), chars));
    }
    return Alignment(std::move(seqs));
}

TEST(EngineAgreement, RandomGenealogiesMatchScalarReference) {
    for (const unsigned seed : {11u, 12u, 13u, 14u}) {
        Mt19937 rng(seed);
        const int n = 4 + static_cast<int>(seed % 3) * 6;  // 4..16 tips
        const Alignment data = randomData(n, 300, seed, /*nEvery=*/7);
        const auto model = makeHky85(2.0, data.baseFrequencies());
        const DataLikelihood lik(data, *model);
        for (int rep = 0; rep < 5; ++rep) {
            const Genealogy g = simulateCoalescent(n, 1.0, rng);
            const double ref = lik.logLikelihoodReference(g);
            EXPECT_NEAR(lik.logLikelihood(g), ref, 1e-10) << "seed " << seed << " rep " << rep;
        }
    }
}

TEST(EngineAgreement, UncompressedPatternsMatchToo) {
    Mt19937 rng(21);
    const Alignment data = randomData(8, 200, 21, /*nEvery=*/5);
    const auto model = makeF84(2.0, data.baseFrequencies());
    const DataLikelihood lik(data, *model, RateCategories::uniformRate(), /*compress=*/false);
    const Genealogy g = simulateCoalescent(8, 1.0, rng);
    EXPECT_NEAR(lik.logLikelihood(g), lik.logLikelihoodReference(g), 1e-10);
}

TEST(EngineAgreement, DeepCaterpillarTriggersRescaling) {
    // 48 levels of pruning with long branches: the periodic K-level
    // rescaling must agree with the scalar path's per-node threshold
    // rescaling (both are exact reparameterizations).
    const int n = 48;
    Genealogy g(n);
    NodeId prev = 0;
    for (int i = 0; i < n - 1; ++i) {
        const NodeId internal = n + i;
        g.node(internal).time = 3.0 * (i + 1);
        g.link(internal, prev);
        g.link(internal, i + 1);
        prev = internal;
    }
    g.setRoot(prev);
    g.validate();

    std::vector<Sequence> seqs;
    for (int i = 0; i < n; ++i)
        seqs.push_back(Sequence::fromString("s" + std::to_string(i),
                                            i % 3 ? "ACGTACGT" : "TGCANGCA"));
    const Alignment aln{std::move(seqs)};
    const F81Model model(kUniformFreqs, 1.0);
    const DataLikelihood lik(aln, model);
    const double ref = lik.logLikelihoodReference(g);
    ASSERT_TRUE(std::isfinite(ref));
    EXPECT_NEAR(lik.logLikelihood(g), ref, 1e-10);

    LikelihoodCache cache(lik);
    EXPECT_NEAR(cache.evaluate(g), ref, 1e-10);
}

TEST(EngineAgreement, GammaCategoriesMatchScalarReference) {
    Mt19937 rng(31);
    const Alignment data = randomData(10, 240, 31, /*nEvery=*/9);
    const auto model = makeHky85(2.0, data.baseFrequencies());
    const DataLikelihood lik(data, *model, RateCategories::discreteGamma(0.6, 4));
    for (int rep = 0; rep < 3; ++rep) {
        const Genealogy g = simulateCoalescent(10, 1.0, rng);
        EXPECT_NEAR(lik.logLikelihood(g), lik.logLikelihoodReference(g), 1e-10) << rep;
    }
}

TEST(EngineAgreement, CachedPathMatchesAcrossDirtyUpdates) {
    Mt19937 rng(41);
    Genealogy g = simulateCoalescent(12, 1.0, rng);
    const Alignment data = randomData(12, 300, 41, /*nEvery=*/6);
    const auto model = makeF84(2.0, data.baseFrequencies());
    const DataLikelihood lik(data, *model);
    LikelihoodCache cache(lik);
    EXPECT_NEAR(cache.evaluate(g), lik.logLikelihoodReference(g), 1e-10);

    // A chain of topology-changing proposals, each verified against a
    // fresh scalar evaluation of the proposed state.
    for (int i = 0; i < 40; ++i) {
        auto prop = proposeRecoalesce(g, 1.0, rng);
        const std::vector<NodeId> seeds{prop.target, prop.rebuiltParent, g.sibling(prop.target),
                                        prop.state.sibling(prop.target)};
        const double incremental = cache.evaluateDirty(prop.state, seeds);
        EXPECT_NEAR(incremental, lik.logLikelihoodReference(prop.state), 1e-9) << "step " << i;
        g = std::move(prop.state);
    }
}

TEST(EngineAgreement, PooledEvaluationIsBitwiseIdenticalToSerial) {
    // The pattern-block partition depends only on the problem shape, so
    // parallel evaluation must be bit-identical to serial, not just close.
    Mt19937 rng(51);
    const Genealogy g = simulateCoalescent(14, 1.0, rng);
    const Alignment data = randomData(14, 500, 51);
    const auto model = makeHky85(2.0, data.baseFrequencies());
    const DataLikelihood lik(data, *model);
    ThreadPool pool(5);

    EXPECT_EQ(lik.logLikelihood(g), lik.logLikelihood(g, &pool));

    LikelihoodCache serial(lik);
    LikelihoodCache pooled(lik);
    EXPECT_EQ(serial.evaluate(g), pooled.evaluate(g, &pool));
}

TEST(EngineAgreement, CachedSamplerAcceptSequenceMatchesScalarReplay) {
    // CachedMhSampler (incremental, vectorized) against a hand-rolled
    // replica driven by the same RNG stream but evaluating every state with
    // the scalar reference path: every accept/reject decision must match.
    Mt19937 rng(61);
    const int n = 10;
    const double theta = 1.0;
    const Alignment data = randomData(n, 200, 61);
    const F81Model model(data.baseFrequencies());
    const DataLikelihood lik(data, model);
    Genealogy init = simulateCoalescent(n, theta, rng);
    init.setTipNames(data.names());

    const std::uint64_t seed = 977;
    CachedMhSampler sampler(lik, theta, init, seed);

    Mt19937 replayRng(static_cast<std::uint32_t>(seed ^ (seed >> 32)));
    Genealogy cur = init;
    double curLik = lik.logLikelihoodReference(cur);

    for (int i = 0; i < 300; ++i) {
        auto prop = proposeRecoalesce(cur, theta, replayRng);
        const double newLik = lik.logLikelihoodReference(prop.state);
        const double logR = (newLik + logCoalescentPrior(prop.state, theta)) -
                            (curLik + logCoalescentPrior(cur, theta)) + prop.logReverse -
                            prop.logForward;
        const bool refAccept = logR >= 0.0 || std::log(replayRng.uniformPos()) < logR;
        const bool accept = sampler.step();
        ASSERT_EQ(accept, refAccept) << "diverged at step " << i;
        if (refAccept) {
            cur = std::move(prop.state);
            curLik = newLik;
        }
    }
    EXPECT_NEAR(sampler.currentDataLogLik(), curLik, 1e-8);
    EXPECT_EQ(sampler.current(), cur);
}

TEST(EngineAgreement, DirtyWithoutEvaluateStillThrows) {
    Mt19937 rng(71);
    const Genealogy g = simulateCoalescent(5, 1.0, rng);
    const Alignment data = randomData(5, 60, 71);
    const F81Model model(data.baseFrequencies());
    const DataLikelihood lik(data, model);
    LikelihoodCache cache(lik);
    EXPECT_THROW(cache.evaluateDirty(g, {0}), InvariantError);
}

}  // namespace
}  // namespace mpcgs
