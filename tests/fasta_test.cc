#include "seq/fasta.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace mpcgs {
namespace {

TEST(FastaTest, ParsesMultiRecord) {
    const std::string text =
        ">one description here\n"
        "ACGT\n"
        "ACGT\n"
        ">two\n"
        "TTTTTTTT\n";
    const Alignment a = readFastaString(text);
    EXPECT_EQ(a.sequenceCount(), 2u);
    EXPECT_EQ(a.sequence(0).name(), "one");
    EXPECT_EQ(a.sequence(0).toString(), "ACGTACGT");
    EXPECT_EQ(a.sequence(1).toString(), "TTTTTTTT");
}

TEST(FastaTest, HandlesCrLf) {
    const std::string text = ">x\r\nACGT\r\n>y\r\nTGCA\r\n";
    const Alignment a = readFastaString(text);
    EXPECT_EQ(a.sequence(0).toString(), "ACGT");
}

TEST(FastaTest, RoundTripWithWrapping) {
    const Alignment a({Sequence::fromString("long", std::string(150, 'A') + std::string(50, 'C')),
                       Sequence::fromString("short", std::string(200, 'G'))});
    const Alignment b = readFastaString(writeFastaString(a, 60));
    EXPECT_EQ(b.sequence(0).toString(), a.sequence(0).toString());
    EXPECT_EQ(b.sequence(1).toString(), a.sequence(1).toString());
}

TEST(FastaTest, RejectsDataBeforeHeader) {
    EXPECT_THROW(readFastaString("ACGT\n>x\nACGT\n"), ParseError);
}

TEST(FastaTest, RejectsEmptyInput) {
    EXPECT_THROW(readFastaString(""), ParseError);
}

TEST(FastaTest, RejectsEmptyName) {
    EXPECT_THROW(readFastaString(">\nACGT\n"), ParseError);
}

TEST(FastaTest, RejectsRaggedAlignment) {
    EXPECT_THROW(readFastaString(">a\nACGT\n>b\nAC\n"), ParseError);
}

}  // namespace
}  // namespace mpcgs
