// Fail-point framework semantics: spec grammar, trigger arithmetic
// (once / after(K) / every(N)), errno actions, registry validation and
// counter/reset behavior. These are the deterministic foundations the
// fault-injection matrix test builds on.
#include <cerrno>
#include <cstdlib>
#include <string>

#include <gtest/gtest.h>

#include "util/error.h"
#include "util/failpoint.h"

namespace mpcgs {
namespace {

using failpoint::Action;

/// Every test arms and disarms through this fixture so a failing test
/// cannot leak an armed point into the rest of the suite.
class FailpointTest : public ::testing::Test {
  protected:
    void SetUp() override { failpoint::reset(); }
    void TearDown() override { failpoint::reset(); }
};

TEST_F(FailpointTest, UnarmedPointNeverFires) {
    for (int i = 0; i < 100; ++i) EXPECT_FALSE(MPCGS_FAILPOINT("checkpoint.write").fired());
    // The fast path must not count evaluations (nothing is armed anywhere,
    // so the slow path is never entered).
    EXPECT_EQ(failpoint::evaluations("checkpoint.write"), 0u);
}

TEST_F(FailpointTest, OnceFiresExactlyOnFirstEvaluation) {
    failpoint::configure("checkpoint.write=once");
    EXPECT_TRUE(MPCGS_FAILPOINT("checkpoint.write").fired());
    for (int i = 0; i < 10; ++i) EXPECT_FALSE(MPCGS_FAILPOINT("checkpoint.write").fired());
    EXPECT_EQ(failpoint::evaluations("checkpoint.write"), 11u);
}

TEST_F(FailpointTest, AfterSkipsKThenFiresExactlyOnce) {
    failpoint::configure("checkpoint.fsync=after(3)");
    for (int i = 0; i < 3; ++i)
        EXPECT_FALSE(MPCGS_FAILPOINT("checkpoint.fsync").fired()) << "evaluation " << i + 1;
    EXPECT_TRUE(MPCGS_FAILPOINT("checkpoint.fsync").fired()) << "evaluation 4 must fire";
    for (int i = 0; i < 10; ++i) EXPECT_FALSE(MPCGS_FAILPOINT("checkpoint.fsync").fired());
}

TEST_F(FailpointTest, EveryFiresOnEveryNthEvaluation) {
    failpoint::configure("mcmc.logpost=every(3)");
    int fires = 0;
    for (int i = 1; i <= 12; ++i) {
        const bool fired = MPCGS_FAILPOINT("mcmc.logpost").fired();
        EXPECT_EQ(fired, i % 3 == 0) << "evaluation " << i;
        fires += fired ? 1 : 0;
    }
    EXPECT_EQ(fires, 4);
}

TEST_F(FailpointTest, DefaultActionIsErrorAndErrnoCarriesTheNumber) {
    failpoint::configure("checkpoint.write=once");
    EXPECT_EQ(MPCGS_FAILPOINT("checkpoint.write").action, Action::Error);

    failpoint::configure("checkpoint.fsync=once:errno=ENOSPC");
    const auto hit = MPCGS_FAILPOINT("checkpoint.fsync");
    EXPECT_EQ(hit.action, Action::Errno);
    EXPECT_EQ(hit.errnum, ENOSPC);

    failpoint::configure("checkpoint.rename=once:errno=13");
    EXPECT_EQ(MPCGS_FAILPOINT("checkpoint.rename").errnum, 13);

    failpoint::configure("smc.weight=once:nan");
    EXPECT_EQ(MPCGS_FAILPOINT("smc.weight").action, Action::Nan);
}

TEST_F(FailpointTest, OffDisarmsASinglePoint) {
    failpoint::configure("checkpoint.write=every(1);checkpoint.fsync=every(1)");
    EXPECT_TRUE(MPCGS_FAILPOINT("checkpoint.write").fired());
    failpoint::configure("checkpoint.write=off");
    EXPECT_FALSE(MPCGS_FAILPOINT("checkpoint.write").fired());
    // The other point stays armed: off is per-point, not global.
    EXPECT_TRUE(MPCGS_FAILPOINT("checkpoint.fsync").fired());
}

TEST_F(FailpointTest, UnknownNameIsRejectedAtConfigureTime) {
    EXPECT_THROW(failpoint::configure("no.such.point=once"), ConfigError);
    // The message should list the registry so a typo is self-diagnosing.
    try {
        failpoint::configure("checkpoint.wrte=once");
        FAIL() << "typo accepted";
    } catch (const ConfigError& e) {
        EXPECT_NE(std::string(e.what()).find("checkpoint.write"), std::string::npos)
            << "registry listing missing from: " << e.what();
    }
}

TEST_F(FailpointTest, SyntaxErrorsAreRejected) {
    EXPECT_THROW(failpoint::configure("checkpoint.write"), ConfigError);
    EXPECT_THROW(failpoint::configure("checkpoint.write=bogus"), ConfigError);
    EXPECT_THROW(failpoint::configure("checkpoint.write=after()"), ConfigError);
    EXPECT_THROW(failpoint::configure("checkpoint.write=every(0)"), ConfigError);
    EXPECT_THROW(failpoint::configure("checkpoint.write=once:errno=EBOGUS"), ConfigError);
}

TEST_F(FailpointTest, ConfigureFromEnvArmsAndEmptyEnvIsANoop) {
    ASSERT_EQ(setenv("MPCGS_FAILPOINTS", "checkpoint.read=once", 1), 0);
    failpoint::configureFromEnv();
    EXPECT_TRUE(MPCGS_FAILPOINT("checkpoint.read").fired());
    ASSERT_EQ(unsetenv("MPCGS_FAILPOINTS"), 0);
    failpoint::reset();
    failpoint::configureFromEnv();
    EXPECT_FALSE(MPCGS_FAILPOINT("checkpoint.read").fired());
}

TEST_F(FailpointTest, ResetZeroesCountersAndDisarms) {
    failpoint::configure("checkpoint.write=after(2)");
    (void)MPCGS_FAILPOINT("checkpoint.write");
    (void)MPCGS_FAILPOINT("checkpoint.write");
    failpoint::reset();
    EXPECT_EQ(failpoint::evaluations("checkpoint.write"), 0u);
    // Re-arming after reset starts the count from scratch: the third
    // overall evaluation would have fired pre-reset.
    failpoint::configure("checkpoint.write=after(2)");
    EXPECT_FALSE(MPCGS_FAILPOINT("checkpoint.write").fired());
}

TEST_F(FailpointTest, RegistryCoversTheDocumentedSites) {
    const auto points = failpoint::registeredPoints();
    EXPECT_GE(points.size(), 10u);
    const auto has = [&](const char* name) {
        for (const auto& p : points)
            if (std::string(p.name) == name) return true;
        return false;
    };
    for (const char* name : {"checkpoint.open", "checkpoint.write", "checkpoint.fsync",
                             "checkpoint.rename", "checkpoint.read.open", "checkpoint.read",
                             "mcmc.logpost", "smc.weight", "smc.collapse", "pmmh.logz",
                             "supervisor.stop"})
        EXPECT_TRUE(has(name)) << "registry lost site " << name;
}

}  // namespace
}  // namespace mpcgs
