#include "seq/nexus.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace mpcgs {
namespace {

TEST(NexusTest, ParsesBasicDataBlock) {
    const std::string text =
        "#NEXUS\n"
        "BEGIN DATA;\n"
        "  DIMENSIONS NTAX=3 NCHAR=8;\n"
        "  FORMAT DATATYPE=DNA MISSING=? GAP=-;\n"
        "  MATRIX\n"
        "    alpha ACGTACGT\n"
        "    beta  ACGTACGA\n"
        "    gamma TTGTACGT\n"
        "  ;\n"
        "END;\n";
    const Alignment a = readNexusString(text);
    EXPECT_EQ(a.sequenceCount(), 3u);
    EXPECT_EQ(a.length(), 8u);
    EXPECT_EQ(a.sequence(0).name(), "alpha");
    EXPECT_EQ(a.sequence(2).toString(), "TTGTACGT");
}

TEST(NexusTest, ParsesInterleavedMatrix) {
    const std::string text =
        "#NEXUS\n"
        "BEGIN DATA;\n"
        "  DIMENSIONS NTAX=2 NCHAR=8;\n"
        "  FORMAT DATATYPE=DNA INTERLEAVE;\n"
        "  MATRIX\n"
        "    one ACGT\n"
        "    two TGCA\n"
        "    one ACGT\n"
        "    two TGCA\n"
        "  ;\n"
        "END;\n";
    const Alignment a = readNexusString(text);
    EXPECT_EQ(a.sequence(0).toString(), "ACGTACGT");
    EXPECT_EQ(a.sequence(1).toString(), "TGCATGCA");
}

TEST(NexusTest, SkipsCommentsAndOtherBlocks) {
    const std::string text =
        "#NEXUS\n"
        "[a file-level comment]\n"
        "BEGIN TAXA;\n"
        "  DIMENSIONS NTAX=2;\n"
        "  TAXLABELS one two;\n"
        "END;\n"
        "BEGIN DATA;\n"
        "  DIMENSIONS NTAX=2 NCHAR=4;\n"
        "  FORMAT DATATYPE=DNA;\n"
        "  MATRIX\n"
        "    one AC[inline comment]GT\n"
        "    two TGCA\n"
        "  ;\n"
        "END;\n";
    const Alignment a = readNexusString(text);
    EXPECT_EQ(a.sequence(0).toString(), "ACGT");
}

TEST(NexusTest, QuotedTaxonNames) {
    const std::string text =
        "#NEXUS\n"
        "BEGIN DATA;\n"
        "DIMENSIONS NTAX=2 NCHAR=4;\n"
        "FORMAT DATATYPE=DNA;\n"
        "MATRIX\n"
        "'taxon one' ACGT\n"
        "'taxon two' TGCA\n"
        ";\n"
        "END;\n";
    const Alignment a = readNexusString(text);
    EXPECT_EQ(a.sequence(0).name(), "taxon one");
}

TEST(NexusTest, SequencesSplitAcrossTokens) {
    const std::string text =
        "#NEXUS\nBEGIN DATA;\nDIMENSIONS NTAX=2 NCHAR=8;\nFORMAT DATATYPE=DNA;\n"
        "MATRIX\none ACGT ACGT\ntwo TGCA TGCA\n;\nEND;\n";
    const Alignment a = readNexusString(text);
    EXPECT_EQ(a.sequence(0).toString(), "ACGTACGT");
}

TEST(NexusTest, RejectsBadInputs) {
    EXPECT_THROW(readNexusString("not nexus at all"), ParseError);
    EXPECT_THROW(readNexusString("#NEXUS\nBEGIN DATA;\nMATRIX\n;\nEND;\n"), ParseError);
    // Wrong character count.
    EXPECT_THROW(readNexusString("#NEXUS\nBEGIN DATA;\nDIMENSIONS NTAX=2 NCHAR=6;\n"
                                 "FORMAT DATATYPE=DNA;\nMATRIX\none ACGT\ntwo TGCATG\n;\nEND;\n"),
                 ParseError);
    // Unsupported datatype.
    EXPECT_THROW(readNexusString("#NEXUS\nBEGIN DATA;\nDIMENSIONS NTAX=2 NCHAR=4;\n"
                                 "FORMAT DATATYPE=PROTEIN;\nMATRIX\none ACGT\ntwo TGCA\n;\nEND;\n"),
                 ParseError);
    // No data block at all.
    EXPECT_THROW(readNexusString("#NEXUS\nBEGIN TREES;\nEND;\n"), ParseError);
    EXPECT_THROW(readNexusFile("/nonexistent.nex"), ParseError);
}

}  // namespace
}  // namespace mpcgs
