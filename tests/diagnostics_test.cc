#include "mcmc/diagnostics.h"

#include <cmath>
#include <random>
#include <vector>

#include <gtest/gtest.h>

namespace mpcgs {
namespace {

std::vector<double> normalSeries(std::size_t n, double mu, double sigma, unsigned seed) {
    std::mt19937 gen(seed);
    std::normal_distribution<double> d(mu, sigma);
    std::vector<double> out(n);
    for (auto& x : out) x = d(gen);
    return out;
}

TEST(GelmanRubin, NearOneForHomogeneousChains) {
    std::vector<std::vector<double>> chains;
    for (unsigned c = 0; c < 4; ++c) chains.push_back(normalSeries(2000, 0.0, 1.0, 10 + c));
    const double r = gelmanRubin(chains);
    EXPECT_GT(r, 0.98);
    EXPECT_LT(r, 1.05);
}

TEST(GelmanRubin, LargeForShiftedChains) {
    std::vector<std::vector<double>> chains{normalSeries(2000, 0.0, 1.0, 1),
                                            normalSeries(2000, 8.0, 1.0, 2)};
    EXPECT_GT(gelmanRubin(chains), 2.0);
}

TEST(GelmanRubin, Validation) {
    EXPECT_THROW(gelmanRubin({normalSeries(100, 0, 1, 1)}), std::invalid_argument);
    EXPECT_THROW(gelmanRubin({{1.0, 2.0}, {1.0}}), std::invalid_argument);
}

TEST(Geweke, SmallForStationarySeries) {
    const auto xs = normalSeries(5000, 2.0, 1.0, 3);
    EXPECT_LT(std::fabs(gewekeZ(xs)), 3.0);
}

TEST(Geweke, LargeForDriftingSeries) {
    std::vector<double> xs(5000);
    std::mt19937 gen(4);
    std::normal_distribution<double> d(0.0, 0.5);
    for (std::size_t i = 0; i < xs.size(); ++i)
        xs[i] = static_cast<double>(i) * 0.002 + d(gen);  // strong drift
    EXPECT_GT(std::fabs(gewekeZ(xs)), 4.0);
}

TEST(Geweke, Validation) {
    const std::vector<double> tooShort(5, 1.0);
    EXPECT_THROW(gewekeZ(tooShort), std::invalid_argument);
}

TEST(IntegratedAutocorrelationTime, NearOneForIid) {
    const auto xs = normalSeries(8000, 0.0, 1.0, 5);
    const double tau = integratedAutocorrelationTime(xs);
    EXPECT_GT(tau, 0.5);
    EXPECT_LT(tau, 2.0);
}

TEST(IntegratedAutocorrelationTime, LargeForPersistentSeries) {
    std::vector<double> xs(8000);
    std::mt19937 gen(6);
    std::normal_distribution<double> d(0.0, 0.1);
    double v = 0.0;
    for (auto& x : xs) {
        v = 0.97 * v + d(gen);
        x = v;
    }
    EXPECT_GT(integratedAutocorrelationTime(xs), 10.0);
}

TEST(EstimateBurnIn, DetectsInitialTransient) {
    // Chain starts far away and decays toward stationarity at 0 — the Fig 2
    // shape.
    std::vector<double> xs(4000);
    std::mt19937 gen(7);
    std::normal_distribution<double> d(0.0, 0.5);
    double v = 50.0;
    for (auto& x : xs) {
        v = 0.99 * v + d(gen);
        x = v;
    }
    const std::size_t b = estimateBurnIn(xs);
    EXPECT_GT(b, 50u);    // the transient is visible
    EXPECT_LT(b, 2000u);  // but bounded
}

TEST(EstimateBurnIn, ZeroForStationarySeries) {
    const auto xs = normalSeries(2000, 1.0, 1.0, 8);
    EXPECT_LT(estimateBurnIn(xs), 200u);
}

}  // namespace
}  // namespace mpcgs
