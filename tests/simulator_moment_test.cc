// Moment checks for the coalescent simulators against closed-form
// expectations: E[TMRCA] = theta (1 - 1/n) and E[total branch length] =
// theta * H_{n-1} for the single-population Kingman simulator (Eq. 17 rate
// convention: pair rate 2/theta), and, for the structured simulator under
// symmetric migration, the per-lineage migration-event intensity: each
// lineage migrates at total rate M, so E[#events] = M * E[total
// lineage-time]. Tolerances are a few standard errors wide at the fixed
// seeds — deterministic, not flaky.
#include <cmath>

#include <gtest/gtest.h>

#include "coalescent/simulator.h"
#include "coalescent/structured.h"
#include "rng/mt19937.h"

namespace mpcgs {
namespace {

double harmonic(int n) {
    double h = 0.0;
    for (int k = 1; k <= n; ++k) h += 1.0 / k;
    return h;
}

TEST(SimulatorMomentTest, TmrcaAndLengthMatchClosedFormAcrossN) {
    const double theta = 1.3;
    for (const int n : {2, 5, 10}) {
        Mt19937 rng(static_cast<std::uint32_t>(100 + n));
        const int reps = 40000;
        double tmrca = 0.0, length = 0.0;
        for (int i = 0; i < reps; ++i) {
            const Genealogy g = simulateCoalescent(n, theta, rng);
            tmrca += g.tmrca();
            length += g.totalBranchLength();
        }
        tmrca /= reps;
        length /= reps;

        const double expectTmrca = theta * (1.0 - 1.0 / n);
        const double expectLength = theta * harmonic(n - 1);
        EXPECT_NEAR(tmrca, expectTmrca, 0.03 * expectTmrca) << "n = " << n;
        EXPECT_NEAR(length, expectLength, 0.03 * expectLength) << "n = " << n;
    }
}

TEST(SimulatorMomentTest, PairwiseCoalescenceTimeIsThetaOverTwo) {
    // n = 2 is fully known: T2 ~ Exp(2/theta), so E = theta/2 and
    // Var = (theta/2)^2.
    const double theta = 0.8;
    Mt19937 rng(7);
    const int reps = 60000;
    double mean = 0.0, sq = 0.0;
    for (int i = 0; i < reps; ++i) {
        const double t = simulateCoalescent(2, theta, rng).tmrca();
        mean += t;
        sq += t * t;
    }
    mean /= reps;
    sq /= reps;
    EXPECT_NEAR(mean, theta / 2.0, 0.02 * theta);
    EXPECT_NEAR(sq - mean * mean, theta * theta / 4.0, 0.05 * theta * theta);
}

TEST(SimulatorMomentTest, StructuredReducesToKingmanUnderFastSymmetricMigration) {
    // With equal per-deme thetas and fast symmetric migration the
    // structured coalescent converges to a panmictic coalescent over the
    // TOTAL population (the classical strong-migration limit): two demes
    // of size theta mix into one of size 2 theta — a lineage pair shares a
    // deme half the time, halving the pair rate. E[TMRCA] therefore
    // approaches 2 theta (1 - 1/n).
    const double theta = 1.0;
    const int n = 6;
    MigrationModel m(2, theta, 50.0);  // >> coalescence rates
    std::vector<int> demes(n, 0);
    for (int i = n / 2; i < n; ++i) demes[i] = 1;

    Mt19937 rng(17);
    const int reps = 20000;
    double tmrca = 0.0;
    for (int i = 0; i < reps; ++i)
        tmrca += simulateStructuredCoalescent(demes, m, rng).tree().tmrca();
    tmrca /= reps;
    const double expect = 2.0 * theta * (1.0 - 1.0 / n);
    EXPECT_NEAR(tmrca, expect, 0.05 * expect);
}

TEST(SimulatorMomentTest, MigrationEventIntensityMatchesRate) {
    // Each lineage migrates at total rate M (symmetric two-deme model), so
    // over many genealogies  E[#migration events] = M * E[total
    // lineage-time]  — checked as a ratio so the unknown lineage-time
    // expectation cancels.
    for (const double M : {0.3, 1.0, 2.5}) {
        MigrationModel m(2, 1.0, M);
        std::vector<int> demes{0, 0, 0, 1, 1, 1};
        Mt19937 rng(static_cast<std::uint32_t>(1000 + 10 * M));
        const int reps = 20000;
        double events = 0.0, lineageTime = 0.0;
        for (int i = 0; i < reps; ++i) {
            const StructuredGenealogy g = simulateStructuredCoalescent(demes, m, rng);
            events += static_cast<double>(g.migrationCount());
            const StructuredSummary s = StructuredSummary::fromGenealogy(g, 2);
            lineageTime += s.U[0] + s.U[1];
        }
        EXPECT_NEAR(events / lineageTime, M, 0.04 * M) << "M = " << M;
    }
}

TEST(SimulatorMomentTest, AsymmetricMigrationShiftsOccupancyTowardTheSink) {
    // With M_12 >> M_21 lineages accumulate in deme 2 (index 1): the
    // lineage-time ratio U_1 : U_2 must approach the stationary ratio
    // M_21 : M_12.
    MigrationModel m(2, 1.0, 1.0);
    m.setRate(0, 1, 2.0);
    m.setRate(1, 0, 0.5);
    std::vector<int> demes{0, 0, 0, 1, 1, 1};
    Mt19937 rng(77);
    const int reps = 20000;
    double u0 = 0.0, u1 = 0.0;
    for (int i = 0; i < reps; ++i) {
        const StructuredSummary s = StructuredSummary::fromGenealogy(
            simulateStructuredCoalescent(demes, m, rng), 2);
        u0 += s.U[0];
        u1 += s.U[1];
    }
    // Coalescence pulls occupancy off the pure-CTMC stationary ratio 0.2;
    // assert direction and rough magnitude.
    EXPECT_LT(u0 / (u0 + u1), 0.35);
    EXPECT_GT(u0 / (u0 + u1), 0.10);
}

}  // namespace
}  // namespace mpcgs
