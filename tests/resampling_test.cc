// Resampling-kernel statistics: every scheme must be unbiased
// (E[offspring_i] = N * w_i, verified over many seeds) and the
// low-variance schemes (systematic, stratified, residual) must beat
// multinomial's offspring variance; plus exact ESS arithmetic and basic
// parsing/guard checks.
#include "smc/resampling.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "rng/mt19937.h"
#include "util/error.h"

namespace mpcgs {
namespace {

constexpr ResamplingScheme kAllSchemes[] = {
    ResamplingScheme::Multinomial, ResamplingScheme::Stratified,
    ResamplingScheme::Systematic, ResamplingScheme::Residual};

/// A deliberately skewed but non-degenerate weight vector.
std::vector<double> skewedWeights(std::size_t n) {
    std::vector<double> w(n);
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        w[i] = 1.0 / static_cast<double>(1 + i * i % 7 + i % 3);
        sum += w[i];
    }
    for (double& x : w) x /= sum;
    return w;
}

/// Mean and per-index variance of offspring counts over `reps` draws.
struct OffspringStats {
    std::vector<double> mean;
    double meanVariance = 0.0;  ///< variance averaged over indices
};

OffspringStats offspringStats(ResamplingScheme scheme, const std::vector<double>& w,
                              int reps, std::uint32_t seed) {
    const std::size_t n = w.size();
    std::vector<double> sum(n, 0.0), sumSq(n, 0.0);
    Mt19937 rng(seed);
    std::vector<std::uint32_t> ancestors;
    std::vector<double> counts(n);
    for (int r = 0; r < reps; ++r) {
        resampleAncestors(scheme, w, rng, ancestors);
        EXPECT_EQ(ancestors.size(), n);
        std::fill(counts.begin(), counts.end(), 0.0);
        for (const std::uint32_t a : ancestors) {
            EXPECT_LT(a, n);
            counts[a] += 1.0;
        }
        for (std::size_t i = 0; i < n; ++i) {
            sum[i] += counts[i];
            sumSq[i] += counts[i] * counts[i];
        }
    }
    OffspringStats out;
    out.mean.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        out.mean[i] = sum[i] / reps;
        out.meanVariance += sumSq[i] / reps - out.mean[i] * out.mean[i];
    }
    out.meanVariance /= static_cast<double>(n);
    return out;
}

TEST(ResamplingTest, EverySchemeIsUnbiased) {
    const std::size_t n = 64;
    const std::vector<double> w = skewedWeights(n);
    const int reps = 4000;
    for (const ResamplingScheme scheme : kAllSchemes) {
        const OffspringStats stats = offspringStats(scheme, w, reps, 1234);
        for (std::size_t i = 0; i < n; ++i) {
            const double expected = static_cast<double>(n) * w[i];
            // Multinomial per-index sd over 4000 reps is
            // sqrt(N w (1-w) / reps) < 0.03; 5 sigma of headroom.
            EXPECT_NEAR(stats.mean[i], expected, 0.15)
                << resamplingSchemeName(scheme) << " index " << i;
        }
    }
}

TEST(ResamplingTest, LowVarianceSchemesBeatMultinomial) {
    const std::vector<double> w = skewedWeights(64);
    const int reps = 4000;
    const double multinomial =
        offspringStats(ResamplingScheme::Multinomial, w, reps, 99).meanVariance;
    const double stratified =
        offspringStats(ResamplingScheme::Stratified, w, reps, 99).meanVariance;
    const double systematic =
        offspringStats(ResamplingScheme::Systematic, w, reps, 99).meanVariance;
    const double residual =
        offspringStats(ResamplingScheme::Residual, w, reps, 99).meanVariance;
    EXPECT_LT(stratified, multinomial);
    EXPECT_LT(systematic, multinomial);
    EXPECT_LT(residual, multinomial);
    // Systematic is at least as tight as stratified on average (a single
    // shared uniform versus one per stratum).
    EXPECT_LE(systematic, stratified * 1.05);
}

TEST(ResamplingTest, EssMathIsExact) {
    // Uniform weights: ESS = N exactly.
    const std::vector<double> uniform(16, 1.0 / 16.0);
    EXPECT_DOUBLE_EQ(weightEss(uniform), 16.0);

    // Single atom: ESS = 1.
    std::vector<double> atom(16, 0.0);
    atom[3] = 1.0;
    EXPECT_DOUBLE_EQ(weightEss(atom), 1.0);

    // Two-point {p, 1-p}: ESS = 1 / (p^2 + (1-p)^2).
    for (const double p : {0.1, 0.25, 0.5, 0.9}) {
        const std::vector<double> two{p, 1.0 - p};
        EXPECT_DOUBLE_EQ(weightEss(two), 1.0 / (p * p + (1.0 - p) * (1.0 - p)));
    }

    // Log-space entry point: shifting all log-weights by a constant
    // (unnormalized input) changes nothing.
    const std::vector<double> logW{-1.0, -2.0, -3.0, -4.0};
    std::vector<double> shifted = logW;
    for (double& x : shifted) x += 123.0;
    EXPECT_NEAR(essFromLogWeights(logW), essFromLogWeights(shifted), 1e-9);

    // Cross-check against the closed form for two log-weights.
    const std::vector<double> pair{std::log(0.2), std::log(0.8)};
    EXPECT_NEAR(essFromLogWeights(pair), 1.0 / (0.04 + 0.64), 1e-12);
}

TEST(ResamplingTest, SchemeNamesRoundTrip) {
    for (const ResamplingScheme scheme : kAllSchemes)
        EXPECT_EQ(parseResamplingScheme(resamplingSchemeName(scheme)), scheme);
    EXPECT_THROW(parseResamplingScheme("bogus"), ConfigError);
}

TEST(ResamplingTest, ResidualKeepsDeterministicCopiesFirst) {
    // With weights {0.5, 0.25, 0.125, 0.125} and N = 8 every expected
    // count is integral, so residual resampling is fully deterministic.
    const std::vector<double> w{0.5, 0.25, 0.125, 0.125};
    std::vector<double> probs(8, 0.0);
    // Expand to 8 slots: put the mass on the first four indices.
    probs[0] = w[0];
    probs[1] = w[1];
    probs[2] = w[2];
    probs[3] = w[3];
    Mt19937 rng(5);
    std::vector<std::uint32_t> ancestors;
    resampleAncestors(ResamplingScheme::Residual, probs, rng, ancestors);
    std::vector<int> counts(8, 0);
    for (const std::uint32_t a : ancestors) counts[a]++;
    EXPECT_EQ(counts[0], 4);
    EXPECT_EQ(counts[1], 2);
    EXPECT_EQ(counts[2], 1);
    EXPECT_EQ(counts[3], 1);
}

TEST(ResamplingTest, EmptyWeightsAreRejected) {
    Mt19937 rng(1);
    std::vector<std::uint32_t> ancestors;
    EXPECT_THROW(resampleAncestors(ResamplingScheme::Systematic, {}, rng, ancestors),
                 InvariantError);
}

}  // namespace
}  // namespace mpcgs
