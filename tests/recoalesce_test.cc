#include "core/recoalesce.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "coalescent/prior.h"
#include "coalescent/simulator.h"
#include "core/genealogy_problem.h"
#include "mcmc/mh.h"
#include "rng/mt19937.h"
#include "util/error.h"
#include "util/stats.h"

namespace mpcgs {
namespace {

/// ((0,1) at 1, ((0,1),2) at 2) with tips 0,1,2.
Genealogy makeThreeTip() {
    Genealogy g(3);
    g.node(3).time = 1.0;
    g.node(4).time = 2.0;
    g.link(3, 0);
    g.link(3, 1);
    g.link(4, 3);
    g.link(4, 2);
    g.setRoot(4);
    return g;
}

TEST(LineageIndexTest, CrossingCountsOnHandTree) {
    const Genealogy g = makeThreeTip();
    const LineageIndex idx(g, g.root());
    EXPECT_EQ(idx.crossingCount(0.5), 3);   // 0,1,2 branches
    EXPECT_EQ(idx.crossingCount(1.5), 2);   // node3 and tip2 branches
    EXPECT_EQ(idx.crossingCount(5.0), 1);   // root lineage only
    EXPECT_EQ(idx.crossingCount(-0.1), 0);  // before the present
}

TEST(LineageIndexTest, CrossingNodesIdentity) {
    const Genealogy g = makeThreeTip();
    const LineageIndex idx(g, g.root());
    auto nodes = idx.crossingNodes(1.5);
    std::sort(nodes.begin(), nodes.end());
    EXPECT_EQ(nodes, (std::vector<NodeId>{2, 3}));
    EXPECT_EQ(idx.crossingNodes(10.0), std::vector<NodeId>{4});
}

TEST(LineageIndexTest, IntegralPiecewise) {
    const Genealogy g = makeThreeTip();
    const LineageIndex idx(g, g.root());
    // m = 3 on [0,1), 2 on [1,2), 1 above.
    EXPECT_NEAR(idx.integrateCount(0.0, 1.0), 3.0, 1e-12);
    EXPECT_NEAR(idx.integrateCount(0.0, 2.0), 5.0, 1e-12);
    EXPECT_NEAR(idx.integrateCount(0.5, 2.5), 0.5 * 3 + 2 + 0.5, 1e-12);
    EXPECT_NEAR(idx.integrateCount(3.0, 7.0), 4.0, 1e-12);
}

TEST(LineageIndexTest, AttachDensityNormalizes) {
    // Total probability of attaching anywhere (sum over lineages of the
    // attachment density) integrates to 1 over s in (start, inf).
    const Genealogy g = makeThreeTip();
    const LineageIndex idx(g, g.root());
    const double theta = 1.3, start = 0.0;
    double integral = 0.0;
    const double dt = 1e-3;
    for (double s = start; s < 40.0; s += dt) {
        const double mid = s + dt / 2;
        integral += idx.crossingCount(mid) *
                    std::exp(idx.logAttachDensity(start, mid, theta)) * dt;
    }
    EXPECT_NEAR(integral, 1.0, 1e-3);
}

TEST(LineageIndexTest, SampleAgreesWithDensity) {
    const Genealogy g = makeThreeTip();
    const LineageIndex idx(g, g.root());
    const double theta = 1.0;
    Mt19937 rng(9);
    const int reps = 50000;
    int below = 0;
    const double cut = 1.0;
    for (int r = 0; r < reps; ++r)
        if (idx.sampleAttachTime(0.0, theta, rng) < cut) ++below;
    // P(attach < 1) = 1 - exp(-(2/theta) * integral_0^1 m) = 1 - e^{-6}.
    EXPECT_NEAR(below / static_cast<double>(reps), 1.0 - std::exp(-6.0), 0.01);
}

TEST(RecoalesceTest, ProposalsAreValidTrees) {
    Mt19937 rng(10);
    Genealogy g = simulateCoalescent(8, 1.0, rng);
    for (int r = 0; r < 300; ++r) {
        const auto prop = proposeRecoalesce(g, 1.0, rng);
        EXPECT_NO_THROW(prop.state.validate());
        EXPECT_TRUE(std::isfinite(prop.logForward));
        EXPECT_TRUE(std::isfinite(prop.logReverse));
        g = prop.state;  // walk the chain of proposals
    }
}

TEST(RecoalesceTest, WorksOnTwoTipTrees) {
    Mt19937 rng(11);
    Genealogy g(2);
    g.node(2).time = 0.7;
    g.link(2, 0);
    g.link(2, 1);
    g.setRoot(2);
    for (int r = 0; r < 100; ++r) {
        const auto prop = proposeRecoalesce(g, 2.0, rng);
        EXPECT_NO_THROW(prop.state.validate());
        g = prop.state;
    }
}

TEST(RecoalesceTest, PreservesTipsAndCounts) {
    Mt19937 rng(12);
    const Genealogy g = simulateCoalescent(6, 1.0, rng);
    const auto prop = proposeRecoalesce(g, 1.0, rng);
    EXPECT_EQ(prop.state.tipCount(), 6);
    EXPECT_EQ(prop.state.nodeCount(), g.nodeCount());
    for (int t = 0; t < 6; ++t) EXPECT_DOUBLE_EQ(prop.state.node(t).time, 0.0);
}

TEST(RecoalesceTest, HastingsRatioConsistentWithPrior) {
    // Because the proposal density is the conditional coalescent prior,
    // logForward - logReverse must equal logPrior(G') - logPrior(G)
    // whenever the topology outside the moved branch is unchanged... in
    // general the identity holds including the topology factor:
    //   q_f / q_r = P(G'|theta) / P(G|theta).
    Mt19937 rng(13);
    Genealogy g = simulateCoalescent(7, 0.8, rng);
    const double theta = 0.8;
    int checked = 0;
    for (int r = 0; r < 200; ++r) {
        const auto prop = proposeRecoalesce(g, theta, rng);
        const double lhs = prop.logForward - prop.logReverse;
        const double rhs =
            logCoalescentPrior(prop.state, theta) - logCoalescentPrior(g, theta);
        EXPECT_NEAR(lhs, rhs, 1e-9) << "rep " << r;
        ++checked;
        g = prop.state;
    }
    EXPECT_EQ(checked, 200);
}

TEST(RecoalesceTest, MhOnPriorMatchesCoalescentMoments) {
    // With a flat likelihood the posterior is the coalescent prior; the MH
    // chain built on recoalescence moves must reproduce its moments.
    struct PriorOnlyProblem {
        using State = Genealogy;
        double theta;
        double logPosterior(const State& g) const { return logCoalescentPrior(g, theta); }
        struct Proposal {
            State state;
            double logForward;
            double logReverse;
        };
        Proposal propose(const State& cur, Rng& rng) const {
            auto r = proposeRecoalesce(cur, theta, rng);
            return Proposal{std::move(r.state), r.logForward, r.logReverse};
        }
    };

    const double theta = 1.0;
    const int n = 5;
    Mt19937 rng(14);
    const PriorOnlyProblem problem{theta};
    MhChain<PriorOnlyProblem> chain(problem, simulateCoalescent(n, theta, rng), 15);

    RunningStats tmrca, wsum;
    chain.run(2000, 60000, [&](const Genealogy& g) {
        tmrca.add(g.tmrca());
        const auto ivs = g.intervals();
        wsum.add(weightedIntervalSum(ivs));
    });
    // E[TMRCA] = theta (1 - 1/n); E[sum k(k-1) t_k] = (n-1) theta.
    EXPECT_NEAR(tmrca.mean(), theta * (1.0 - 1.0 / n), 0.03);
    EXPECT_NEAR(wsum.mean(), (n - 1) * theta, 0.08);
    EXPECT_GT(chain.acceptanceRate(), 0.9);  // prior-only: nearly always accepted
}

TEST(RecoalesceTest, RejectsBadTheta) {
    Mt19937 rng(16);
    const Genealogy g = makeThreeTip();
    EXPECT_THROW(proposeRecoalesce(g, 0.0, rng), ConfigError);
}

}  // namespace
}  // namespace mpcgs
