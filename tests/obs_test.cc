// The observability layer (src/obs/): registry no-op-when-unarmed and
// cross-thread counter folding, histogram bucket/quantile math, the JSON
// and Prometheus emitters, the trace recorder's Chrome trace_event
// format, obs.emit fault semantics — and the layer's central promise:
// arming metrics NEVER perturbs an estimate (bitwise logZ equality armed
// vs unarmed, and thread-count invariance with metrics on).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "coalescent/simulator.h"
#include "lik/felsenstein.h"
#include "lik/lik_backend.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "par/thread_pool.h"
#include "rng/mt19937.h"
#include "seq/seqgen.h"
#include "serve/json_mini.h"
#include "smc/smc_sampler.h"
#include "util/error.h"
#include "util/failpoint.h"

namespace mpcgs {
namespace {

class ObsTest : public ::testing::Test {
  protected:
    void SetUp() override {
        obs::disarm();
        obs::reset();
        failpoint::reset();
    }
    void TearDown() override {
        obs::disarm();
        obs::reset();
        failpoint::reset();
    }

    static std::string tempPath(const std::string& name) {
        return ::testing::TempDir() + name;
    }
};

TEST_F(ObsTest, UnarmedRegistryRecordsNothing) {
    ASSERT_FALSE(obs::armed());
    obs::add(obs::Counter::PoolLaunches, 100);
    obs::set(obs::Gauge::SmcLogZ, -12.5);
    obs::observe(obs::Histogram::PoolLaunchLatencyUs, 42);
    const obs::MetricsSnapshot snap = obs::snapshot();
    EXPECT_EQ(snap.counter(obs::Counter::PoolLaunches), 0u);
    EXPECT_FALSE(snap.gaugeSet[static_cast<std::size_t>(obs::Gauge::SmcLogZ)]);
    EXPECT_EQ(snap.histCount(obs::Histogram::PoolLaunchLatencyUs), 0u);
}

TEST_F(ObsTest, ArmedCountersFoldAcrossThreadShards) {
    obs::arm();
    constexpr int kThreads = 6;
    constexpr std::uint64_t kPerThread = 10000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([] {
            for (std::uint64_t i = 0; i < kPerThread; ++i)
                obs::add(obs::Counter::LikCombineOps);
        });
    for (auto& t : threads) t.join();
    obs::add(obs::Counter::LikFlushes, 3);  // plus the main thread's shard
    const obs::MetricsSnapshot snap = obs::snapshot();
    EXPECT_EQ(snap.counter(obs::Counter::LikCombineOps), kThreads * kPerThread);
    EXPECT_EQ(snap.counter(obs::Counter::LikFlushes), 3u);
}

TEST_F(ObsTest, GaugesAreLastWriteWinsAndFlagged) {
    obs::arm();
    obs::set(obs::Gauge::McmcRhat, 1.5);
    obs::set(obs::Gauge::McmcRhat, 1.0071);
    obs::set(obs::Gauge::SmcLogZ, -321.25);
    const obs::MetricsSnapshot snap = obs::snapshot();
    EXPECT_TRUE(snap.gaugeSet[static_cast<std::size_t>(obs::Gauge::McmcRhat)]);
    EXPECT_EQ(snap.gauges[static_cast<std::size_t>(obs::Gauge::McmcRhat)], 1.0071);
    EXPECT_EQ(snap.gauges[static_cast<std::size_t>(obs::Gauge::SmcLogZ)], -321.25);
    EXPECT_FALSE(snap.gaugeSet[static_cast<std::size_t>(obs::Gauge::McmcPooledEss)]);
}

TEST_F(ObsTest, HistogramBucketsAndQuantilesFollowPowerOfTwoBounds) {
    obs::arm();
    const auto h = obs::Histogram::ServeEstimateUs;
    // 0 and 1 land in bucket 0 (le 1); 2 in bucket 1; 3,4 in bucket 2; a
    // huge value clamps into the +Inf bucket.
    obs::observe(h, 0);
    obs::observe(h, 1);
    obs::observe(h, 2);
    obs::observe(h, 3);
    obs::observe(h, 4);
    obs::observe(h, std::uint64_t{1} << 40);
    const obs::MetricsSnapshot snap = obs::snapshot();
    const std::size_t hi = static_cast<std::size_t>(h);
    EXPECT_EQ(snap.hist[hi][0], 2u);
    EXPECT_EQ(snap.hist[hi][1], 1u);
    EXPECT_EQ(snap.hist[hi][2], 2u);
    EXPECT_EQ(snap.hist[hi][obs::kHistogramBuckets - 1], 1u);
    EXPECT_EQ(snap.histCount(h), 6u);
    EXPECT_EQ(snap.histSumUs[hi], 10u + (std::uint64_t{1} << 40));

    // Quantiles report the le bound of the covering bucket: the 3rd of 6
    // observations sits in bucket 1 (le 2), the last in +Inf (capped at
    // the sum rather than inventing a bound).
    EXPECT_EQ(snap.histQuantileUs(h, 0.50), 2u);
    EXPECT_EQ(snap.histQuantileUs(h, 0.75), 4u);
    EXPECT_EQ(snap.histQuantileUs(h, 1.00), snap.histSumUs[hi]);
    EXPECT_EQ(snap.histQuantileUs(obs::Histogram::ServeLogzUs, 0.5), 0u);  // empty
}

TEST_F(ObsTest, ResetZeroesEverything) {
    obs::arm();
    obs::add(obs::Counter::SmcGenerations, 7);
    obs::set(obs::Gauge::SmcEssFraction, 0.5);
    obs::observe(obs::Histogram::ServeLogzUs, 9);
    obs::reset();
    const obs::MetricsSnapshot snap = obs::snapshot();
    EXPECT_EQ(snap.counter(obs::Counter::SmcGenerations), 0u);
    EXPECT_FALSE(snap.gaugeSet[static_cast<std::size_t>(obs::Gauge::SmcEssFraction)]);
    EXPECT_EQ(snap.histCount(obs::Histogram::ServeLogzUs), 0u);
    EXPECT_EQ(snap.droppedThreads, 0u);
}

TEST_F(ObsTest, JsonEmissionIsFlatAndParseable) {
    obs::arm();
    obs::add(obs::Counter::PoolLaunches, 11);
    obs::set(obs::Gauge::SmcLogZ, -42.5);
    obs::observe(obs::Histogram::PoolLaunchLatencyUs, 100);
    const std::string json = obs::toJson(obs::snapshot());
    // Single-level object: the protocol's own minimal parser accepts it.
    const auto obj = json_mini::parse(json);
    EXPECT_EQ(json_mini::getNumber(obj, "pool.launches"), 11.0);
    EXPECT_EQ(json_mini::getNumber(obj, "smc.logz"), -42.5);
    EXPECT_EQ(json_mini::getNumber(obj, "pool.launch_latency_us.count"), 1.0);
    EXPECT_EQ(json_mini::getNumber(obj, "pool.launch_latency_us.sum"), 100.0);
    EXPECT_EQ(json_mini::getNumber(obj, "pool.launch_latency_us.p50"), 128.0);
    // Unset gauges and empty histograms stay out of the object entirely.
    EXPECT_FALSE(json_mini::has(obj, "mcmc.rhat"));
    EXPECT_FALSE(json_mini::has(obj, "serve.checkpoint_write_us.count"));
    // Every counter appears even at zero — dashboards need stable keys.
    EXPECT_EQ(json_mini::getNumber(obj, "serve.jobs_rejected"), 0.0);
}

TEST_F(ObsTest, PrometheusExpositionMatchesTheTextFormat) {
    obs::arm();
    obs::add(obs::Counter::LikMatricesComputed, 5);
    obs::set(obs::Gauge::McmcRhat, 1.01);
    obs::observe(obs::Histogram::ServeSnapshotUs, 3);
    obs::observe(obs::Histogram::ServeSnapshotUs, 3000000);  // +Inf bucket
    const std::string text = obs::toPrometheus(obs::snapshot());
    EXPECT_NE(text.find("# TYPE mpcgs_lik_matrices_computed counter\n"
                        "mpcgs_lik_matrices_computed 5\n"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("# TYPE mpcgs_mcmc_rhat gauge"), std::string::npos);
    EXPECT_NE(text.find("# TYPE mpcgs_serve_job_latency_us_snapshot histogram"),
              std::string::npos);
    EXPECT_NE(text.find("mpcgs_serve_job_latency_us_snapshot_bucket{le=\"4\"} 1\n"),
              std::string::npos)
        << text;
    // Buckets are cumulative and the +Inf bucket equals _count.
    EXPECT_NE(text.find("mpcgs_serve_job_latency_us_snapshot_bucket{le=\"+Inf\"} 2\n"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("mpcgs_serve_job_latency_us_snapshot_count 2\n"), std::string::npos);
    EXPECT_NE(text.find("mpcgs_serve_job_latency_us_snapshot_sum 3000003\n"), std::string::npos);
}

TEST_F(ObsTest, MetricsFileRoundTripsThroughDisk) {
    obs::arm();
    obs::add(obs::Counter::SmcResamples, 4);
    const std::string path = tempPath("obs_metrics.json");
    obs::writeMetricsFile(path);
    std::ifstream in(path);
    std::string body((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    const auto obj = json_mini::parse(body);
    EXPECT_EQ(json_mini::getNumber(obj, "smc.resamples"), 4.0);
    std::remove(path.c_str());
}

TEST_F(ObsTest, EmitFaultsSurfaceAsTypedErrors) {
    // Injected errno: an operational I/O fault (exit taxonomy slot 6).
    failpoint::configure("obs.emit=once:errno=ENOSPC");
    try {
        obs::writeMetricsFile(tempPath("obs_fault.json"));
        FAIL() << "armed obs.emit did not surface";
    } catch (const IoError& e) {
        EXPECT_NE(std::string(e.what()).find("No space left"), std::string::npos);
    }
    // Default action: the generic injected-fault error.
    failpoint::configure("obs.emit=once");
    EXPECT_THROW(obs::writeMetricsFile(tempPath("obs_fault.json")),
                 InjectedFaultError);
    failpoint::reset();
    // A real unwritable path is the same IoError, no fail point needed.
    EXPECT_THROW(obs::writeMetricsFile("/nonexistent_dir_mpcgs/m.json"), IoError);
}

TEST_F(ObsTest, TraceRecorderEmitsChromeTraceEvents) {
    obs::TraceRecorder rec(8);
    rec.record("alpha", "pool", 10, 5);
    rec.record("beta", "smc", 20, 2);
    EXPECT_EQ(rec.eventCount(), 2u);
    EXPECT_EQ(rec.droppedEvents(), 0u);
    const std::string json = rec.toJson();
    EXPECT_EQ(json.find("{\"traceEvents\":["), 0u) << json;
    EXPECT_NE(json.find("{\"name\":\"alpha\",\"cat\":\"pool\",\"ph\":\"X\","
                        "\"ts\":10,\"dur\":5,\"pid\":1,"),
              std::string::npos)
        << json;
    EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);

    const std::string path = tempPath("obs_trace.json");
    rec.writeFile(path);
    EXPECT_TRUE(std::ifstream(path).good());
    std::remove(path.c_str());
}

TEST_F(ObsTest, TraceRecorderDropsBeyondCapacityAndReportsIt) {
    obs::TraceRecorder rec(2);
    rec.record("a", "t", 0, 1);
    rec.record("b", "t", 1, 1);
    rec.record("c", "t", 2, 1);  // over capacity: dropped, not reallocated
    EXPECT_EQ(rec.eventCount(), 2u);
    EXPECT_EQ(rec.droppedEvents(), 1u);
    EXPECT_NE(rec.toJson().find("\"mpcgsDroppedEvents\":1"), std::string::npos);
}

TEST_F(ObsTest, TraceSpansRecordOnlyWhileArmed) {
    { const obs::TraceSpan unarmed("ghost", "test"); }  // no recorder: no-op
    obs::TraceRecorder rec(8);
    obs::armTrace(&rec);
    {
        const obs::TraceSpan outer("outer", "test");
        const obs::TraceSpan inner("inner", "test");
    }
    obs::armTrace(nullptr);
    { const obs::TraceSpan after("after", "test"); }  // disarmed again
    EXPECT_EQ(rec.eventCount(), 2u);
    const std::string json = rec.toJson();
    EXPECT_NE(json.find("\"name\":\"inner\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"outer\""), std::string::npos);
    EXPECT_EQ(json.find("\"name\":\"ghost\""), std::string::npos);
    EXPECT_EQ(json.find("\"name\":\"after\""), std::string::npos);
}

// --- the central guarantee: metrics never perturb an estimate ----------

namespace {

DataLikelihood makeLik(Alignment& store) {
    Mt19937 rng(307);
    const Genealogy truth = simulateCoalescent(14, 1.0, rng);
    const auto gen = makeF84(2.0, kUniformFreqs);
    store = simulateSequences(truth, *gen, {200, 1.0}, rng);
    static const F81Model model(kUniformFreqs);
    return DataLikelihood(store, model);
}

double runFilterLogZ(const DataLikelihood& lik, ThreadPool* pool) {
    SmcOptions opts;
    opts.particles = 64;
    opts.backend = LikBackendKind::Batched;
    const auto backend = makeLikelihoodBackend(opts.backend, lik);
    SmcFilter filter(*backend, 1.0, opts, 29, pool);
    while (!filter.done()) filter.step();
    return filter.logZ();
}

}  // namespace

TEST_F(ObsTest, ArmingMetricsKeepsSmcLogZBitwiseIdentical) {
    Alignment data;
    const DataLikelihood lik = makeLik(data);

    obs::disarm();
    const double unarmedLogZ = runFilterLogZ(lik, nullptr);

    obs::arm();
    const double armedLogZ = runFilterLogZ(lik, nullptr);
    const obs::MetricsSnapshot snap = obs::snapshot();
    // The armed run actually recorded (this test would be vacuous against
    // a registry that never turned on).
    EXPECT_GT(snap.counter(obs::Counter::SmcGenerations), 0u);
    EXPECT_GT(snap.counter(obs::Counter::LikMatricesComputed), 0u);

    // Bitwise, not approximate: instrumentation touches no RNG stream.
    EXPECT_EQ(std::memcmp(&unarmedLogZ, &armedLogZ, sizeof(double)), 0)
        << unarmedLogZ << " vs " << armedLogZ;
}

TEST_F(ObsTest, ArmedRunsStayThreadCountInvariant) {
    Alignment data;
    const DataLikelihood lik = makeLik(data);
    obs::arm();
    const double serialLogZ = runFilterLogZ(lik, nullptr);
    ThreadPool pool(4);
    const double pooledLogZ = runFilterLogZ(lik, &pool);
    EXPECT_EQ(std::memcmp(&serialLogZ, &pooledLogZ, sizeof(double)), 0)
        << serialLogZ << " vs " << pooledLogZ;
}

}  // namespace
}  // namespace mpcgs
