#include "mcmc/gmh.h"

#include <array>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "util/stats.h"

namespace mpcgs {
namespace {

/// Discrete target on {0..3}; proposals drawn iid from a fixed biased
/// distribution q (region-free independence sampler). With the pi/q
/// weighting the GMH chain must still converge to pi.
struct DiscreteGmhProblem {
    using State = int;
    struct Region {};  // state-independent

    std::array<double, 4> pi{0.1, 0.2, 0.3, 0.4};
    std::array<double, 4> q{0.4, 0.3, 0.2, 0.1};  // deliberately mismatched

    double logPosterior(const State& s) const { return std::log(pi[static_cast<std::size_t>(s)]); }
    Region makeRegion(const State&, Rng&) const { return {}; }
    State proposeInRegion(const Region&, Rng& rng) const {
        return static_cast<int>(rng.categorical(std::span<const double>(q)));
    }
    double logProposalDensity(const Region&, const State& s) const {
        return std::log(q[static_cast<std::size_t>(s)]);
    }
};

class GmhProposalCountSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(GmhProposalCountSweep, ConvergesToTargetForAnyN) {
    const DiscreteGmhProblem problem;
    GmhOptions opts;
    opts.numProposals = GetParam();
    opts.samplesPerIteration = 4;
    opts.seed = 321;
    GmhSampler<DiscreteGmhProblem> sampler(problem, opts);

    std::array<double, 4> counts{};
    std::size_t total = 0;
    const std::size_t iters = 60000 / opts.numProposals + 2000;
    sampler.run(0, 500, iters, [&](const int& s) {
        counts[static_cast<std::size_t>(s)] += 1.0;
        ++total;
    });
    for (std::size_t i = 0; i < 4; ++i)
        EXPECT_NEAR(counts[i] / static_cast<double>(total), problem.pi[i], 0.015)
            << "N=" << opts.numProposals << " state " << i;
}

INSTANTIATE_TEST_SUITE_P(ProposalCounts, GmhProposalCountSweep,
                         ::testing::Values(1u, 2u, 8u, 32u));

TEST(GmhSamplerTest, ParallelPoolGivesIdenticalSamples) {
    const DiscreteGmhProblem problem;
    GmhOptions opts;
    opts.numProposals = 16;
    opts.samplesPerIteration = 4;
    opts.seed = 777;

    std::vector<int> serialSamples, parallelSamples;
    {
        GmhSampler<DiscreteGmhProblem> s(problem, opts, nullptr);
        s.run(0, 50, 200, [&](const int& x) { serialSamples.push_back(x); });
    }
    {
        ThreadPool pool(6);
        GmhSampler<DiscreteGmhProblem> s(problem, opts, &pool);
        s.run(0, 50, 200, [&](const int& x) { parallelSamples.push_back(x); });
    }
    // Philox streams are keyed by (iteration, proposal index), so thread
    // scheduling cannot change the chain.
    EXPECT_EQ(serialSamples, parallelSamples);
}

TEST(GmhSamplerTest, StatsAreTracked) {
    const DiscreteGmhProblem problem;
    GmhOptions opts;
    opts.numProposals = 8;
    opts.samplesPerIteration = 2;
    GmhSampler<DiscreteGmhProblem> sampler(problem, opts);
    sampler.run(0, 10, 100, [](const int&) {});
    const GmhStats& st = sampler.stats();
    EXPECT_EQ(st.iterations, 110u);
    EXPECT_EQ(st.samplesDrawn, 220u);
    EXPECT_GT(st.moveRate(), 0.5);  // N=8 independent proposals move often
    EXPECT_GT(st.meanGeneratorWeight, 0.0);
    EXPECT_LT(st.meanGeneratorWeight, 1.0);
}

/// Continuous Gaussian target N(1, 0.5^2); proposals N(0, 2^2) iid.
struct GaussianGmhProblem {
    using State = double;
    struct Region {};
    double logPosterior(const State& x) const {
        return -0.5 * (x - 1.0) * (x - 1.0) / 0.25;
    }
    Region makeRegion(const State&, Rng&) const { return {}; }
    State proposeInRegion(const Region&, Rng& rng) const { return rng.normal(0.0, 2.0); }
    double logProposalDensity(const Region&, const State& x) const {
        return -0.5 * x * x / 4.0 - std::log(2.0);
    }
};

TEST(GmhSamplerTest, GaussianTargetMoments) {
    const GaussianGmhProblem problem;
    GmhOptions opts;
    opts.numProposals = 32;
    opts.samplesPerIteration = 8;
    opts.seed = 5;
    GmhSampler<GaussianGmhProblem> sampler(problem, opts);
    RunningStats rs;
    sampler.run(0.0, 200, 20000, [&](const double& x) { rs.add(x); });
    EXPECT_NEAR(rs.mean(), 1.0, 0.02);
    EXPECT_NEAR(rs.variance(), 0.25, 0.02);
}

/// Region-dependent proposal: the region stores the generator's value and
/// proposals are drawn around it. Density is computable, so pi/q keeps the
/// chain exact even though proposals depend on the current state through
/// the region — the structure the genealogy sampler uses.
struct LocalRegionProblem {
    using State = double;
    struct Region {
        double center;
    };
    double logPosterior(const State& x) const { return -0.5 * x * x; }  // N(0,1)
    Region makeRegion(const State& s, Rng&) const { return Region{s}; }
    State proposeInRegion(const Region& r, Rng& rng) const {
        return r.center + rng.normal(0.0, 1.0);
    }
    double logProposalDensity(const Region& r, const State& x) const {
        const double d = x - r.center;
        return -0.5 * d * d;
    }
};

TEST(GmhSamplerTest, RegionDependentProposalIsExact) {
    const LocalRegionProblem problem;
    GmhOptions opts;
    opts.numProposals = 16;
    opts.samplesPerIteration = 4;
    opts.seed = 6;
    GmhSampler<LocalRegionProblem> sampler(problem, opts);
    RunningStats rs;
    sampler.run(5.0, 500, 40000, [&](const double& x) { rs.add(x); });
    EXPECT_NEAR(rs.mean(), 0.0, 0.02);
    EXPECT_NEAR(rs.variance(), 1.0, 0.05);
}

TEST(GmhSamplerTest, BurnInIterationsAreNotEmitted) {
    const DiscreteGmhProblem problem;
    GmhOptions opts;
    opts.numProposals = 4;
    opts.samplesPerIteration = 3;
    GmhSampler<DiscreteGmhProblem> sampler(problem, opts);
    std::size_t emitted = 0;
    sampler.run(0, 100, 50, [&](const int&) { ++emitted; });
    EXPECT_EQ(emitted, 150u);  // 50 iterations * 3 samples, burn-in silent
}

}  // namespace
}  // namespace mpcgs
