#include "util/stats.h"

#include <cmath>
#include <random>
#include <vector>

#include <gtest/gtest.h>

namespace mpcgs {
namespace {

TEST(Mean, Basic) {
    const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
    EXPECT_DOUBLE_EQ(mean(xs), 2.5);
}

TEST(Mean, EmptyIsZero) { EXPECT_DOUBLE_EQ(mean({}), 0.0); }

TEST(Variance, UnbiasedSample) {
    const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
    EXPECT_NEAR(variance(xs), 32.0 / 7.0, 1e-12);
}

TEST(Variance, SinglePointIsZero) {
    const std::vector<double> xs{3.0};
    EXPECT_DOUBLE_EQ(variance(xs), 0.0);
}

TEST(Stdev, SqrtOfVariance) {
    const std::vector<double> xs{1.0, 3.0};
    EXPECT_NEAR(stdev(xs), std::sqrt(2.0), 1e-12);
}

TEST(Pearson, PerfectPositive) {
    const std::vector<double> xs{1, 2, 3, 4, 5};
    const std::vector<double> ys{2, 4, 6, 8, 10};
    EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
}

TEST(Pearson, PerfectNegative) {
    const std::vector<double> xs{1, 2, 3};
    const std::vector<double> ys{3, 2, 1};
    EXPECT_NEAR(pearson(xs, ys), -1.0, 1e-12);
}

TEST(Pearson, KnownValue) {
    // Paper Table 1: true theta vs the mpcgs estimates. The paper reports a
    // "very strong" correlation of r = 0.905 for its accuracy comparison;
    // the mpcgs column alone gives r ~ 0.86 and the pooled columns ~ 0.9.
    const std::vector<double> truth{0.5, 1.0, 2.0, 3.0, 4.0};
    const std::vector<double> mpcgs{0.966, 1.131, 2.423, 5.32, 3.913};
    EXPECT_NEAR(pearson(truth, mpcgs), 0.8618, 0.001);

    const std::vector<double> pooledTruth{0.5, 1.0, 2.0, 3.0, 4.0, 0.5, 1.0, 2.0, 3.0, 4.0};
    const std::vector<double> pooledEst{0.858, 0.959, 2.521, 5.432, 4.384,
                                        0.966, 1.131, 2.423, 5.32, 3.913};
    const double pooled = pearson(pooledTruth, pooledEst);
    EXPECT_GT(pooled, 0.85);  // "very strong" band per Evans (1996)
    EXPECT_LT(pooled, 1.0);
}

TEST(Pearson, ThrowsOnMismatch) {
    const std::vector<double> xs{1, 2, 3};
    const std::vector<double> ys{1, 2};
    EXPECT_THROW(pearson(xs, ys), std::invalid_argument);
}

TEST(Pearson, ThrowsOnConstantSeries) {
    const std::vector<double> xs{1, 1, 1};
    const std::vector<double> ys{1, 2, 3};
    EXPECT_THROW(pearson(xs, ys), std::invalid_argument);
}

TEST(Median, OddAndEven) {
    const std::vector<double> odd{5, 1, 3};
    EXPECT_DOUBLE_EQ(median(odd), 3.0);
    const std::vector<double> even{4, 1, 3, 2};
    EXPECT_DOUBLE_EQ(median(even), 2.5);
}

TEST(Quantile, Endpoints) {
    const std::vector<double> xs{10, 20, 30};
    EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 10.0);
    EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 30.0);
    EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 20.0);
}

TEST(Quantile, Throws) {
    EXPECT_THROW(quantile({}, 0.5), std::invalid_argument);
    const std::vector<double> xs{1.0};
    EXPECT_THROW(quantile(xs, 1.5), std::invalid_argument);
}

TEST(RunningStats, MatchesBatch) {
    std::mt19937 gen(7);
    std::normal_distribution<double> d(3.0, 2.0);
    std::vector<double> xs(500);
    RunningStats rs;
    for (auto& x : xs) {
        x = d(gen);
        rs.add(x);
    }
    EXPECT_NEAR(rs.mean(), mean(xs), 1e-10);
    EXPECT_NEAR(rs.variance(), variance(xs), 1e-8);
    EXPECT_EQ(rs.count(), xs.size());
}

TEST(RunningStats, MergeEqualsCombined) {
    std::mt19937 gen(8);
    std::uniform_real_distribution<double> d(0.0, 1.0);
    RunningStats a, b, all;
    for (int i = 0; i < 100; ++i) {
        const double x = d(gen);
        a.add(x);
        all.add(x);
    }
    for (int i = 0; i < 57; ++i) {
        const double x = d(gen);
        b.add(x);
        all.add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-10);
    EXPECT_DOUBLE_EQ(a.min(), all.min());
    EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
    RunningStats a, empty;
    a.add(1.0);
    a.add(2.0);
    a.merge(empty);
    EXPECT_EQ(a.count(), 2u);
    RunningStats b;
    b.merge(a);
    EXPECT_EQ(b.count(), 2u);
    EXPECT_DOUBLE_EQ(b.mean(), 1.5);
}

TEST(Autocorrelation, LagZeroIsOne) {
    const std::vector<double> xs{1, 2, 3, 4, 5, 4, 3, 2};
    EXPECT_NEAR(autocorrelation(xs, 0), 1.0, 1e-12);
}

TEST(Autocorrelation, IndependentSeriesNearZero) {
    std::mt19937 gen(9);
    std::normal_distribution<double> d(0.0, 1.0);
    std::vector<double> xs(5000);
    for (auto& x : xs) x = d(gen);
    EXPECT_NEAR(autocorrelation(xs, 1), 0.0, 0.05);
}

TEST(Autocorrelation, PersistentSeriesNearOne) {
    std::vector<double> xs(1000);
    std::mt19937 gen(10);
    std::normal_distribution<double> d(0.0, 0.01);
    double v = 0.0;
    for (auto& x : xs) {
        v = 0.99 * v + d(gen);
        x = v;
    }
    EXPECT_GT(autocorrelation(xs, 1), 0.9);
}

TEST(EffectiveSampleSize, IidIsNearN) {
    std::mt19937 gen(11);
    std::normal_distribution<double> d(0.0, 1.0);
    std::vector<double> xs(4000);
    for (auto& x : xs) x = d(gen);
    const double ess = effectiveSampleSize(xs);
    EXPECT_GT(ess, 2000.0);
    EXPECT_LE(ess, 4000.0 * 1.2);
}

TEST(EffectiveSampleSize, CorrelatedIsMuchSmaller) {
    std::vector<double> xs(4000);
    std::mt19937 gen(12);
    std::normal_distribution<double> d(0.0, 0.1);
    double v = 0.0;
    for (auto& x : xs) {
        v = 0.95 * v + d(gen);
        x = v;
    }
    EXPECT_LT(effectiveSampleSize(xs), 1000.0);
}

TEST(HistogramTest, BinsAndTotal) {
    Histogram h(0.0, 1.0, 4);
    h.add(0.1);
    h.add(0.3);
    h.add(0.31);
    h.add(0.99);
    h.add(1.5);   // outside, ignored
    h.add(-0.1);  // outside, ignored
    EXPECT_EQ(h.total(), 4u);
    EXPECT_EQ(h.bins[0], 1u);
    EXPECT_EQ(h.bins[1], 2u);
    EXPECT_EQ(h.bins[3], 1u);
}

TEST(HistogramTest, RejectsBadConstruction) {
    EXPECT_THROW(Histogram(0.0, 0.0, 4), std::invalid_argument);
    EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

}  // namespace
}  // namespace mpcgs
