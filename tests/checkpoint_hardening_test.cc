// Checkpoint robustness: truncated and version-bumped MPCK snapshots must
// produce a diagnosable CheckpointError (never a crash, hang or silent
// misread), v1 and v2 snapshots stay readable under the v3 reader, and
// structured payload corruption is caught by label validation.
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "coalescent/simulator.h"
#include "coalescent/structured.h"
#include "core/driver.h"
#include "mcmc/checkpoint.h"
#include "phylo/tree.h"
#include "rng/mt19937.h"
#include "seq/seqgen.h"
#include "seq/subst_model.h"
#include "util/error.h"

namespace mpcgs {
namespace {

std::string tempPath(const std::string& name) { return ::testing::TempDir() + name; }

std::vector<char> slurp(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::vector<char>(std::istreambuf_iterator<char>(in),
                             std::istreambuf_iterator<char>());
}

void dump(const std::string& path, const std::vector<char>& bytes) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// A realistic snapshot body: a genealogy, an RNG stream and a few scalars.
std::string writeSample(const std::string& name) {
    const std::string path = tempPath(name);
    Mt19937 rng(5);
    const Genealogy g = simulateCoalescent(6, 1.0, rng);
    CheckpointWriter w(path);
    w.u64(42);
    writeGenealogy(w, g);
    writeRng(w, rng);
    w.f64(3.25);
    w.commit();
    return path;
}

TEST(CheckpointHardeningTest, EveryTruncationIsDiagnosable) {
    const std::string path = writeSample("hardening_full.mpck");
    const std::vector<char> bytes = slurp(path);
    ASSERT_GT(bytes.size(), 16u);

    const std::string cut = tempPath("hardening_cut.mpck");
    // Walk a spread of truncation points including the header boundary and
    // the final byte; every one must raise CheckpointError — either at
    // open (header gone) or on the first read past the cut.
    for (std::size_t keep : {std::size_t{0}, std::size_t{3}, std::size_t{4},
                             std::size_t{7}, std::size_t{8}, std::size_t{9},
                             bytes.size() / 4, bytes.size() / 2, bytes.size() - 1}) {
        dump(cut, std::vector<char>(bytes.begin(),
                                    bytes.begin() + static_cast<std::ptrdiff_t>(keep)));
        EXPECT_THROW(
            {
                CheckpointReader r(cut);
                r.u64();
                readGenealogy(r);
                Mt19937 rng(1);
                readRng(r, rng);
                r.f64();
            },
            CheckpointError)
            << "truncated to " << keep << " bytes";
    }
    std::remove(path.c_str());
    std::remove(cut.c_str());
}

TEST(CheckpointHardeningTest, FutureVersionIsRejectedWithTheVersionInTheMessage) {
    const std::string path = tempPath("hardening_future.mpck");
    {
        CheckpointWriter w(path, kCheckpointVersion + 1);
        w.u64(1);
        w.commit();
    }
    try {
        CheckpointReader r(path);
        FAIL() << "future format version was accepted";
    } catch (const CheckpointError& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find(std::to_string(kCheckpointVersion + 1)), std::string::npos)
            << "message should name the offending version: " << what;
    }
    std::remove(path.c_str());
}

TEST(CheckpointHardeningTest, AllSupportedVersionsStillOpen) {
    // v3 readers must keep accepting v1 and v2 files (read-compat is how
    // old runs resume after an upgrade).
    for (std::uint32_t v = kCheckpointMinVersion; v <= kCheckpointVersion; ++v) {
        const std::string path = tempPath("hardening_v" + std::to_string(v) + ".mpck");
        {
            CheckpointWriter w(path, v);
            w.u64(7);
            w.str("payload");
            w.commit();
        }
        CheckpointReader r(path);
        EXPECT_EQ(r.version(), v);
        EXPECT_EQ(r.u64(), 7u);
        EXPECT_EQ(r.str(), "payload");
        std::remove(path.c_str());
    }
}

TEST(CheckpointHardeningTest, ResumeFromTruncatedSnapshotRaisesResumeError) {
    // The driver distinguishes unreadable-snapshot READS (ResumeError, so
    // the CLI can fall back to a fresh run) from config mismatches and
    // write failures (still fatal). Exercise the real estimateTheta path.
    Mt19937 rng(3);
    const Genealogy g = simulateCoalescent(6, 1.0, rng);
    SeqGenOptions so;
    so.length = 120;
    const auto model = makeF84(2.0, kUniformFreqs);
    const Alignment aln = simulateSequences(g, *model, so, rng);

    const std::string path = tempPath("hardening_resume.mpck");
    MpcgsOptions opts;
    opts.theta0 = 1.0;
    opts.emIterations = 2;
    opts.samplesPerIteration = 200;
    opts.strategy = Strategy::SerialMh;
    opts.seed = 77;
    opts.checkpointPath = path;
    opts.checkpointIntervalTicks = 5;
    estimateTheta(aln, opts);

    std::vector<char> bytes = slurp(path);
    ASSERT_GT(bytes.size(), 32u);
    dump(path, std::vector<char>(bytes.begin(),
                                 bytes.begin() + static_cast<std::ptrdiff_t>(
                                                     bytes.size() / 2)));
    // Two-generation retention would rescue a truncated latest via .prev;
    // remove it so this test exercises the no-generation-left path.
    std::remove((path + ".prev").c_str());
    opts.resume = true;
    EXPECT_THROW(estimateTheta(aln, opts), ResumeError);

    // A config mismatch on a READABLE snapshot must NOT become a
    // ResumeError (silently discarding a healthy snapshot would be worse).
    dump(path, bytes);
    opts.seed = 78;  // fingerprint mismatch
    try {
        estimateTheta(aln, opts);
        FAIL() << "incompatible snapshot was accepted";
    } catch (const ResumeError&) {
        FAIL() << "config mismatch must stay fatal, not fall back";
    } catch (const ConfigError&) {
        // expected
    }
    std::remove(path.c_str());
    std::remove((path + ".prev").c_str());
}

/// A realistic SECTIONED (v5) snapshot: two sections of mixed payloads.
std::string writeSectionedSample(const std::string& name) {
    const std::string path = tempPath(name);
    Mt19937 rng(5);
    const Genealogy g = simulateCoalescent(6, 1.0, rng);
    CheckpointWriter w(path);
    w.beginSection("alpha");
    w.u64(42);
    writeGenealogy(w, g);
    w.beginSection("beta");
    writeRng(w, rng);
    w.f64(3.25);
    w.commit();
    return path;
}

/// Reload a writeSectionedSample snapshot through the full sectioned read
/// path (header, frames, names, CRCs, payload parses).
void readSectionedSample(const std::string& path) {
    CheckpointReader r(path);
    r.enterSection("alpha");
    if (r.u64() != 42) throw CheckpointError("payload mismatch in 'alpha'");
    readGenealogy(r);
    r.enterSection("beta");
    Mt19937 rng(1);
    readRng(r, rng);
    r.f64();
}

TEST(CheckpointHardeningTest, EverySingleByteFlipInAV5SnapshotIsDetected) {
    const std::string path = writeSectionedSample("hardening_crc.mpck");
    ASSERT_EQ(verifySnapshot(path), kCheckpointVersion);
    EXPECT_NO_THROW(readSectionedSample(path));
    const std::vector<char> bytes = slurp(path);

    // Flip one byte at a time across the entire file. Wherever the flip
    // lands — header, frame marker, section name, length word, stored CRC
    // or payload — the sectioned reload must raise CheckpointError, never
    // succeed silently and never crash.
    for (std::size_t pos = 0; pos < bytes.size(); ++pos) {
        std::vector<char> mutated = bytes;
        mutated[pos] = static_cast<char>(mutated[pos] ^ 0x5A);
        dump(path, mutated);
        EXPECT_THROW(readSectionedSample(path), CheckpointError)
            << "flip at byte " << pos << " went undetected";
    }
    std::remove(path.c_str());
}

TEST(CheckpointHardeningTest, PayloadCorruptionIsReportedAsAChecksumMismatch) {
    const std::string path = writeSectionedSample("hardening_crc_msg.mpck");
    std::vector<char> bytes = slurp(path);
    // Corrupt deep inside the first (largest) section's payload, well past
    // the header and frame metadata.
    const std::size_t pos = bytes.size() / 2;
    bytes[pos] = static_cast<char>(bytes[pos] ^ 0xFF);
    dump(path, bytes);
    try {
        verifySnapshot(path);
        FAIL() << "payload corruption passed verification";
    } catch (const CheckpointError& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("checksum mismatch"), std::string::npos) << what;
        EXPECT_NE(what.find("section '"), std::string::npos)
            << "message should name the corrupt section: " << what;
    }
    std::remove(path.c_str());
}

TEST(CheckpointHardeningTest, CorruptLatestFallsBackToThePrevGeneration) {
    // Two commits to the same path leave the older generation at .prev.
    const std::string path = writeSectionedSample("hardening_prev.mpck");
    {
        Mt19937 rng(5);
        const Genealogy g = simulateCoalescent(6, 1.0, rng);
        CheckpointWriter w(path);
        w.beginSection("alpha");
        w.u64(42);
        writeGenealogy(w, g);
        w.beginSection("beta");
        writeRng(w, rng);
        w.f64(3.25);
        w.commit();
    }
    const std::string prev = path + ".prev";
    ASSERT_TRUE(checkpointExists(prev)) << "second commit should rotate a .prev";
    ASSERT_EQ(verifySnapshot(prev), kCheckpointVersion);

    // Corrupt the LATEST generation only; selection must fall back to
    // .prev with a warning on stderr, and the fallback must be readable.
    std::vector<char> bytes = slurp(path);
    bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0xFF);
    dump(path, bytes);
    ::testing::internal::CaptureStderr();
    const std::string chosen = pickResumeSnapshot(path);
    const std::string warning = ::testing::internal::GetCapturedStderr();
    EXPECT_EQ(chosen, prev);
    EXPECT_NE(warning.find("falling back"), std::string::npos) << warning;
    EXPECT_NO_THROW(readSectionedSample(chosen));

    // Both generations corrupt: ResumeError naming both failures.
    std::vector<char> prevBytes = slurp(prev);
    prevBytes[prevBytes.size() / 2] =
        static_cast<char>(prevBytes[prevBytes.size() / 2] ^ 0xFF);
    dump(prev, prevBytes);
    EXPECT_THROW(pickResumeSnapshot(path), ResumeError);

    std::remove(path.c_str());
    std::remove(prev.c_str());
}

TEST(CheckpointHardeningTest, EmptySnapshotGetsADistinctMessage) {
    // A 0-byte file is what an interrupted write or a full disk leaves
    // behind; the message must say so rather than "not a snapshot".
    const std::string path = tempPath("hardening_empty.mpck");
    { std::ofstream out(path, std::ios::binary | std::ios::trunc); }
    try {
        CheckpointReader r(path);
        FAIL() << "empty snapshot was accepted";
    } catch (const CheckpointError& e) {
        EXPECT_NE(std::string(e.what()).find("empty"), std::string::npos) << e.what();
    }
    std::remove(path.c_str());
}

TEST(CheckpointHardeningTest, GarbageMagicIsRejected) {
    const std::string path = tempPath("hardening_magic.mpck");
    {
        std::ofstream out(path, std::ios::binary);
        out << "definitely not a snapshot, longer than one header";
    }
    EXPECT_THROW(CheckpointReader r(path), CheckpointError);
    std::remove(path.c_str());
}

TEST(CheckpointHardeningTest, CorruptStructuredPayloadIsRejected) {
    Mt19937 rng(11);
    const MigrationModel m(2, 1.0, 0.5);
    std::vector<int> demes{0, 0, 1, 1};
    const StructuredGenealogy g = simulateStructuredCoalescent(demes, m, rng);

    // Out-of-range deme count at read time: labels beyond K fail validation.
    const std::string path = tempPath("hardening_structured.mpck");
    {
        CheckpointWriter w(path);
        writeStructuredGenealogy(w, g);
        w.commit();
    }
    bool hasDemeOne = false;
    for (NodeId id = 0; id < g.tree().nodeCount(); ++id) hasDemeOne |= g.deme(id) == 1;
    ASSERT_TRUE(hasDemeOne);
    {
        CheckpointReader r(path);
        EXPECT_THROW(readStructuredGenealogy(r, 1), CheckpointError);
    }
    {
        CheckpointReader r(path);
        EXPECT_NO_THROW(readStructuredGenealogy(r, 2));
    }

    // Flip one migration-event count length word to an absurd value: the
    // reader must reject before allocating.
    std::vector<char> bytes = slurp(path);
    // Genealogy payload first; the deme words follow; corrupt the final
    // 8 bytes (the last branch's event count or an event field) to 2^62.
    for (int i = 1; i <= 8; ++i)
        bytes[bytes.size() - static_cast<std::size_t>(i)] = static_cast<char>(0x40 + i);
    dump(path, bytes);
    CheckpointReader r(path);
    EXPECT_THROW(readStructuredGenealogy(r, 2), CheckpointError);
    std::remove(path.c_str());
}

}  // namespace
}  // namespace mpcgs
