// Integration tests: the full Fig 11 pipeline on simulated data.
#include "core/driver.h"

#include <cmath>

#include <gtest/gtest.h>

#include "coalescent/simulator.h"
#include "rng/mt19937.h"
#include "seq/seqgen.h"
#include "seq/subst_model.h"
#include "util/error.h"

namespace mpcgs {
namespace {

Alignment simulateData(int n, double theta, std::size_t length, unsigned seed) {
    Mt19937 rng(seed);
    const Genealogy g = simulateCoalescent(n, theta, rng);
    const auto model = makeF84(2.0, kUniformFreqs);  // the paper's generator
    return simulateSequences(g, *model, {length, 1.0}, rng);
}

MpcgsOptions quickOptions(Strategy strategy) {
    MpcgsOptions o;
    o.theta0 = 0.3;
    o.emIterations = 3;
    o.samplesPerIteration = 1200;
    o.strategy = strategy;
    o.gmhProposals = 16;
    o.gmhSamplesPerSet = 8;
    o.chains = 4;
    o.seed = 11;
    return o;
}

TEST(DriverTest, InitialGenealogyIsValidAndScaled) {
    const Alignment aln = simulateData(6, 1.0, 200, 21);
    const Genealogy g = initialGenealogy(aln, 2.0);
    EXPECT_NO_THROW(g.validate());
    EXPECT_EQ(g.tipCount(), 6);
    EXPECT_NEAR(g.tmrca(), 2.0 * (1.0 - 1.0 / 6.0), 1e-9);
    EXPECT_EQ(g.tipNames()[0], aln.sequence(0).name());
}

TEST(DriverTest, GmhEstimatesSaneTheta) {
    const Alignment aln = simulateData(8, 1.0, 400, 22);
    const MpcgsResult res = estimateTheta(aln, quickOptions(Strategy::Gmh));
    EXPECT_GT(res.theta, 0.15);
    EXPECT_LT(res.theta, 6.0);
    EXPECT_EQ(res.history.size(), 3u);
    // The EM iterations move theta away from the (wrong) driving value.
    EXPECT_GT(res.history.back().thetaAfter, res.history.front().thetaBefore);
}

TEST(DriverTest, SerialMhEstimatesSaneTheta) {
    const Alignment aln = simulateData(8, 1.0, 400, 22);
    const MpcgsResult res = estimateTheta(aln, quickOptions(Strategy::SerialMh));
    EXPECT_GT(res.theta, 0.15);
    EXPECT_LT(res.theta, 6.0);
}

TEST(DriverTest, MultiChainEstimatesSaneTheta) {
    const Alignment aln = simulateData(8, 1.0, 400, 22);
    ThreadPool pool(4);
    const MpcgsResult res = estimateTheta(aln, quickOptions(Strategy::MultiChain), &pool);
    EXPECT_GT(res.theta, 0.15);
    EXPECT_LT(res.theta, 6.0);
}

TEST(DriverTest, StrategiesAgreeOnTheSameData) {
    const Alignment aln = simulateData(10, 1.0, 500, 23);
    MpcgsOptions o = quickOptions(Strategy::Gmh);
    o.samplesPerIteration = 2500;
    o.emIterations = 4;
    const double gmh = estimateTheta(aln, o).theta;
    o.strategy = Strategy::SerialMh;
    const double mh = estimateTheta(aln, o).theta;
    // Same posterior, same EM — estimates agree within MCMC noise.
    EXPECT_LT(std::fabs(std::log(gmh / mh)), std::log(2.2));
}

TEST(DriverTest, GmhIsDeterministicAcrossThreadCounts) {
    const Alignment aln = simulateData(7, 1.0, 250, 24);
    const MpcgsOptions o = quickOptions(Strategy::Gmh);
    const MpcgsResult serial = estimateTheta(aln, o, nullptr);
    ThreadPool pool(6);
    const MpcgsResult parallel = estimateTheta(aln, o, &pool);
    // Philox proposal streams + host-side categorical draws make the whole
    // estimate bit-reproducible regardless of threading.
    EXPECT_DOUBLE_EQ(serial.theta, parallel.theta);
}

TEST(DriverTest, HistoryRecordsAreCoherent) {
    const Alignment aln = simulateData(6, 1.0, 200, 25);
    const MpcgsResult res = estimateTheta(aln, quickOptions(Strategy::Gmh));
    double prev = 0.3;
    for (const auto& h : res.history) {
        EXPECT_DOUBLE_EQ(h.thetaBefore, prev);
        EXPECT_GT(h.thetaAfter, 0.0);
        EXPECT_GT(h.samples, 0u);
        EXPECT_GE(h.seconds, 0.0);
        prev = h.thetaAfter;
    }
    EXPECT_DOUBLE_EQ(res.theta, prev);
    EXPECT_GE(res.totalSeconds, res.samplingSeconds);
}

TEST(DriverTest, RecoversInjectedThetaWithinTolerance) {
    // Coarse accuracy (the Table 1 criterion is correlation, not equality):
    // with theta* = 1 and reasonable data, the estimate lands in [0.3, 4].
    const Alignment aln = simulateData(10, 1.0, 600, 26);
    MpcgsOptions o = quickOptions(Strategy::Gmh);
    o.samplesPerIteration = 3000;
    o.emIterations = 4;
    const MpcgsResult res = estimateTheta(aln, o);
    EXPECT_GT(res.theta, 0.3);
    EXPECT_LT(res.theta, 4.0);
}

TEST(DriverTest, OptionValidation) {
    const Alignment aln = simulateData(6, 1.0, 100, 27);
    MpcgsOptions o = quickOptions(Strategy::Gmh);
    o.theta0 = 0.0;
    EXPECT_THROW(estimateTheta(aln, o), ConfigError);
    o = quickOptions(Strategy::Gmh);
    o.emIterations = 0;
    EXPECT_THROW(estimateTheta(aln, o), ConfigError);
    o = quickOptions(Strategy::Gmh);
    o.substModel = "BOGUS";
    EXPECT_THROW(estimateTheta(aln, o), ConfigError);
    // GMH needs >= 3 sequences.
    const Alignment two({Sequence::fromString("a", "ACGTACGT"),
                         Sequence::fromString("b", "ACGTACGA")});
    EXPECT_THROW(estimateTheta(two, quickOptions(Strategy::Gmh)), ConfigError);
}

TEST(DriverTest, HeatedStrategyEstimatesSaneTheta) {
    const Alignment aln = simulateData(8, 1.0, 400, 22);
    MpcgsOptions o = quickOptions(Strategy::HeatedMh);
    const MpcgsResult res = estimateTheta(aln, o);
    EXPECT_GT(res.theta, 0.15);
    EXPECT_LT(res.theta, 6.0);
    // Swap statistics feed the move-rate field for this strategy.
    EXPECT_GE(res.history.back().moveRate, 0.0);
}

TEST(DriverTest, FinalSummariesSupportCurveReconstruction) {
    const Alignment aln = simulateData(8, 1.0, 300, 29);
    const MpcgsResult res = estimateTheta(aln, quickOptions(Strategy::Gmh));
    ASSERT_FALSE(res.finalSummaries.empty());
    EXPECT_DOUBLE_EQ(res.finalDrivingTheta, res.history.back().thetaBefore);
    // The rebuilt curve is exactly the one the final M-step maximized: its
    // value at the estimate is the recorded maximum.
    const RelativeLikelihood rl(res.finalSummaries, res.finalDrivingTheta);
    EXPECT_NEAR(rl.logL(res.theta), res.history.back().logLAtMax, 1e-9);
}

TEST(DriverTest, TwoSequencesWorkWithSerialMh) {
    Mt19937 rng(28);
    const Genealogy g = simulateCoalescent(2, 1.0, rng);
    const auto model = makeJc69();
    const Alignment aln = simulateSequences(g, *model, {300, 1.0}, rng);
    MpcgsOptions o = quickOptions(Strategy::SerialMh);
    const MpcgsResult res = estimateTheta(aln, o);
    EXPECT_GT(res.theta, 0.0);
    EXPECT_TRUE(std::isfinite(res.theta));
}

}  // namespace
}  // namespace mpcgs
