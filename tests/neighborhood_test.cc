#include "core/neighborhood.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "coalescent/prior.h"
#include "coalescent/simulator.h"
#include "mcmc/gmh.h"
#include "rng/mt19937.h"
#include "util/error.h"
#include "util/stats.h"

namespace mpcgs {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Caterpillar 4-tip tree: (((0,1)@4 t=1, 2)@5 t=2, 3)@6 t=3.
Genealogy makeCaterpillar() {
    Genealogy g(4);
    g.node(4).time = 1.0;
    g.node(5).time = 2.0;
    g.node(6).time = 3.0;
    g.link(4, 0);
    g.link(4, 1);
    g.link(5, 4);
    g.link(5, 2);
    g.link(6, 5);
    g.link(6, 3);
    g.setRoot(6);
    return g;
}

TEST(NeighborhoodRegionTest, TargetCount) {
    EXPECT_EQ(neighborhoodTargetCount(makeCaterpillar()), 2);  // nodes 4 and 5
    Mt19937 rng(1);
    EXPECT_EQ(neighborhoodTargetCount(simulateCoalescent(12, 1.0, rng)), 10);
}

TEST(NeighborhoodRegionTest, BoundedRegionStructure) {
    const Genealogy g = makeCaterpillar();
    // Target node 4: parent 5, ancestor 6 (bounded at t=3).
    const NeighborhoodRegion r = makeNeighborhoodRegion(g, 4, 1.0);
    EXPECT_EQ(r.target, 4);
    EXPECT_EQ(r.parent, 5);
    EXPECT_EQ(r.ancestor, 6);
    // Children: tips 0, 1 (children of 4) and tip 2 (sibling of 4).
    std::array<NodeId, 3> kids = r.children;
    std::sort(kids.begin(), kids.end());
    EXPECT_EQ(kids, (std::array<NodeId, 3>{0, 1, 2}));
    EXPECT_EQ(r.process->totalActive(), 3);
    EXPECT_GT(r.process->completionProbability(), 0.0);

    // Feasible intervals span [0, 3) and are contiguous.
    const auto& ivs = r.process->intervals();
    EXPECT_DOUBLE_EQ(ivs.front().begin, 0.0);
    EXPECT_DOUBLE_EQ(ivs.back().end, 3.0);
    for (std::size_t i = 0; i + 1 < ivs.size(); ++i)
        EXPECT_DOUBLE_EQ(ivs[i].end, ivs[i + 1].begin);
    // All three children are tips: all actives enter at 0.
    EXPECT_EQ(ivs.front().activeEnter, 3);
    // Inactive lineage: only tip 3's branch crosses the region.
    for (const auto& iv : ivs) EXPECT_EQ(iv.inactive, 1);
}

TEST(NeighborhoodRegionTest, UnboundedRegionWhenParentIsRoot) {
    const Genealogy g = makeCaterpillar();
    // Target node 5: parent 6 is the root -> unbounded region.
    const NeighborhoodRegion r = makeNeighborhoodRegion(g, 5, 1.0);
    EXPECT_EQ(r.ancestor, kNoNode);
    EXPECT_DOUBLE_EQ(r.process->completionProbability(), 1.0);
    EXPECT_FALSE(std::isfinite(r.process->intervals().back().end));
    // Children: node 4, tip 2, tip 3.
    std::array<NodeId, 3> kids = r.children;
    std::sort(kids.begin(), kids.end());
    EXPECT_EQ(kids, (std::array<NodeId, 3>{2, 3, 4}));
}

TEST(NeighborhoodRegionTest, RejectsInvalidTargets) {
    const Genealogy g = makeCaterpillar();
    EXPECT_THROW(makeNeighborhoodRegion(g, 0, 1.0), InvariantError);       // tip
    EXPECT_THROW(makeNeighborhoodRegion(g, g.root(), 1.0), InvariantError);  // root
    EXPECT_THROW(makeNeighborhoodRegion(g, 4, 0.0), InvariantError);       // theta
}

TEST(NeighborhoodProposeTest, ProposalsAreValidAndConfinedToRegion) {
    const Genealogy g = makeCaterpillar();
    const NeighborhoodRegion r = makeNeighborhoodRegion(g, 4, 1.0);
    Mt19937 rng(2);
    for (int rep = 0; rep < 300; ++rep) {
        const Genealogy p = proposeInNeighborhood(r, rng);
        EXPECT_NO_THROW(p.validate());
        // The untouched part is bit-identical: root time, tip 3 attachment.
        EXPECT_DOUBLE_EQ(p.node(6).time, 3.0);
        EXPECT_EQ(p.node(3).parent, 6);
        // T below P, both inside (0, 3).
        EXPECT_LT(p.node(4).time, p.node(5).time);
        EXPECT_GT(p.node(4).time, 0.0);
        EXPECT_LT(p.node(5).time, 3.0);
        // T is P's child, P is child of the ancestor.
        EXPECT_EQ(p.node(4).parent, 5);
        EXPECT_EQ(p.node(5).parent, 6);
    }
}

TEST(NeighborhoodProposeTest, TopologyIsRearranged) {
    // With three tips as children, all three pairings of the first merge
    // must occur.
    const Genealogy g = makeCaterpillar();
    const NeighborhoodRegion r = makeNeighborhoodRegion(g, 4, 1.0);
    Mt19937 rng(3);
    std::set<std::pair<NodeId, NodeId>> pairings;
    for (int rep = 0; rep < 300; ++rep) {
        const Genealogy p = proposeInNeighborhood(r, rng);
        NodeId a = p.node(4).child[0], b = p.node(4).child[1];
        if (a > b) std::swap(a, b);
        pairings.insert({a, b});
    }
    EXPECT_EQ(pairings.size(), 3u);  // {0,1}, {0,2}, {1,2}
}

TEST(NeighborhoodDensityTest, GeneratorAndProposalsHaveFiniteDensity) {
    Mt19937 rng(4);
    const Genealogy g = simulateCoalescent(8, 1.0, rng);
    for (int t = 0; t < 20; ++t) {
        const NeighborhoodRegion r = makeNeighborhoodRegion(g, 1.0, rng);
        EXPECT_GT(logNeighborhoodDensity(r, g), -kInf)
            << "generator must be reachable in its own region";
        for (int rep = 0; rep < 20; ++rep) {
            const Genealogy p = proposeInNeighborhood(r, rng);
            EXPECT_GT(logNeighborhoodDensity(r, p), -kInf);
        }
    }
}

TEST(NeighborhoodDensityTest, MutualProposability) {
    // Every member of a proposal set must be able to regenerate the rest:
    // with the shared region, each proposal's density is positive when
    // evaluated from the region built on any other member (§4.3).
    Mt19937 rng(5);
    const Genealogy g = simulateCoalescent(6, 1.0, rng);
    const NodeId target = (g.root() == g.tipCount()) ? g.tipCount() + 1 : g.tipCount();
    const NeighborhoodRegion r0 = makeNeighborhoodRegion(g, target, 1.0);
    std::vector<Genealogy> members{g};
    for (int i = 0; i < 6; ++i) members.push_back(proposeInNeighborhood(r0, rng));
    for (const auto& gen : members) {
        const NeighborhoodRegion r = makeNeighborhoodRegion(gen, r0.target, 1.0);
        for (const auto& other : members)
            EXPECT_GT(logNeighborhoodDensity(r, other), -kInf);
    }
}

TEST(NeighborhoodDensityTest, MonteCarloCdfMatchesDensity) {
    // Empirical frequency of "first merge below cut" vs 2-D quadrature of
    // exp(logNeighborhoodDensity) restricted to one pairing.
    const Genealogy g = makeCaterpillar();
    const double theta = 1.0;
    const NeighborhoodRegion r = makeNeighborhoodRegion(g, 4, theta);
    Mt19937 rng(6);
    const int reps = 30000;
    int hit = 0;
    const double cut = 1.0;
    for (int rep = 0; rep < reps; ++rep) {
        const Genealogy p = proposeInNeighborhood(r, rng);
        if (p.node(4).time < cut) ++hit;
    }
    // Quadrature over s0 in (0, cut), s1 in (s0, 3): density marginalized
    // over the 3 equally likely pairings (all children are tips, so the
    // pairing factor is constant 1/3 and sums out). The mass below the cut
    // is normalized by the quadrature total so midpoint-rule bias cancels.
    const int grid = 900;
    double massBelow = 0.0, massTotal = 0.0;
    const double h = 3.0 / grid;
    for (int i = 0; i < grid; ++i) {
        const double s0 = (i + 0.5) * h;
        for (int j = i + 1; j < grid; ++j) {
            const double s1 = (j + 0.5) * h;
            const std::array<double, 2> times{s0, s1};
            const double ld = r.process->logDensity(times);
            if (ld > -kInf) {
                const double cell = std::exp(ld) * h * h;
                massTotal += cell;
                if (s0 < cut) massBelow += cell;
            }
        }
    }
    EXPECT_NEAR(massTotal, 1.0, 0.02);  // density normalizes on the region
    EXPECT_NEAR(hit / static_cast<double>(reps), massBelow / massTotal, 0.01);
}

TEST(NeighborhoodGmhTest, PriorOnlySamplingMatchesCoalescentMoments) {
    // Flat likelihood: the GMH sampler over neighbourhood proposals must
    // reproduce the coalescent prior's moments — this exercises the whole
    // §4.2/4.3 stack (regions, death process, pairing, pi/q weights).
    struct PriorOnlyProblem {
        using State = Genealogy;
        using Region = NeighborhoodRegion;
        double theta;
        double logPosterior(const State& g) const { return logCoalescentPrior(g, theta); }
        Region makeRegion(const State& s, Rng& rng) const {
            return makeNeighborhoodRegion(s, theta, rng);
        }
        State proposeInRegion(const Region& r, Rng& rng) const {
            return proposeInNeighborhood(r, rng);
        }
        double logProposalDensity(const Region& r, const State& s) const {
            return logNeighborhoodDensity(r, s);
        }
    };

    const double theta = 1.0;
    const int n = 5;
    Mt19937 rng(7);
    const PriorOnlyProblem problem{theta};
    GmhOptions opts;
    opts.numProposals = 8;
    opts.samplesPerIteration = 4;
    opts.seed = 99;
    GmhSampler<PriorOnlyProblem> sampler(problem, opts);

    RunningStats tmrca, wsum;
    sampler.run(simulateCoalescent(n, theta, rng), 500, 15000, [&](const Genealogy& g) {
        tmrca.add(g.tmrca());
        const auto ivs = g.intervals();
        wsum.add(weightedIntervalSum(ivs));
    });
    EXPECT_NEAR(tmrca.mean(), theta * (1.0 - 1.0 / n), 0.05);
    EXPECT_NEAR(wsum.mean(), (n - 1) * theta, 0.12);
    EXPECT_GT(sampler.stats().moveRate(), 0.5);
}

}  // namespace
}  // namespace mpcgs
