#include "seq/alignment.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace mpcgs {
namespace {

Alignment makeAln() {
    return Alignment({Sequence::fromString("s1", "AACGT"),
                      Sequence::fromString("s2", "AACGA"),
                      Sequence::fromString("s3", "AACTT")});
}

TEST(AlignmentTest, BasicAccessors) {
    const Alignment a = makeAln();
    EXPECT_EQ(a.sequenceCount(), 3u);
    EXPECT_EQ(a.length(), 5u);
    EXPECT_EQ(a.sequence(1).name(), "s2");
    const auto names = a.names();
    EXPECT_EQ(names[2], "s3");
}

TEST(AlignmentTest, ColumnExtraction) {
    const Alignment a = makeAln();
    const auto col = a.column(3);
    EXPECT_EQ(col[0], kNucG);
    EXPECT_EQ(col[1], kNucG);
    EXPECT_EQ(col[2], kNucT);
}

TEST(AlignmentTest, RejectsUnequalLengths) {
    EXPECT_THROW(Alignment({Sequence::fromString("a", "ACGT"),
                            Sequence::fromString("b", "ACG")}),
                 ParseError);
}

TEST(AlignmentTest, BaseFrequenciesSumToOne) {
    const Alignment a = makeAln();
    const BaseFreqs pi = a.baseFrequencies();
    double sum = 0.0;
    for (const double p : pi) sum += p;
    EXPECT_NEAR(sum, 1.0, 1e-12);
    // 7 A, 3 C, 2 G, 3 T out of 15 (with a small pseudo-count floor).
    EXPECT_NEAR(pi[kNucA], 7.0 / 15.0, 0.01);
    EXPECT_NEAR(pi[kNucC], 3.0 / 15.0, 0.01);
}

TEST(AlignmentTest, BaseFrequenciesNeverZero) {
    // No G at all; the floor keeps pi_G positive.
    const Alignment a({Sequence::fromString("s1", "AAAA"), Sequence::fromString("s2", "CCTT")});
    const BaseFreqs pi = a.baseFrequencies();
    EXPECT_GT(pi[kNucG], 0.0);
}

TEST(AlignmentTest, UnknownDetection) {
    EXPECT_FALSE(makeAln().hasUnknowns());
    const Alignment b({Sequence::fromString("s1", "ACN"), Sequence::fromString("s2", "ACG")});
    EXPECT_TRUE(b.hasUnknowns());
}

TEST(AlignmentTest, SegregatingSites) {
    const Alignment a = makeAln();
    // Columns: AAA, AAA, CCC, GGT, TAT -> 2 polymorphic.
    EXPECT_EQ(a.segregatingSites(), 2u);
}

TEST(AlignmentTest, SegregatingSitesIgnoresUnknowns) {
    const Alignment a({Sequence::fromString("s1", "AN"), Sequence::fromString("s2", "AC")});
    EXPECT_EQ(a.segregatingSites(), 0u);
}

}  // namespace
}  // namespace mpcgs
