#include "phylo/tree.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "util/error.h"

namespace mpcgs {
namespace {

/// Balanced 4-tip genealogy:
///   node 4 = (0,1) at t=1, node 5 = (2,3) at t=2, node 6 = root at t=3.
Genealogy makeFourTip() {
    Genealogy g(4);
    g.node(4).time = 1.0;
    g.node(5).time = 2.0;
    g.node(6).time = 3.0;
    g.link(4, 0);
    g.link(4, 1);
    g.link(5, 2);
    g.link(5, 3);
    g.link(6, 4);
    g.link(6, 5);
    g.setRoot(6);
    return g;
}

TEST(GenealogyTest, ConstructionBasics) {
    const Genealogy g = makeFourTip();
    EXPECT_EQ(g.tipCount(), 4);
    EXPECT_EQ(g.nodeCount(), 7);
    EXPECT_EQ(g.internalCount(), 3);
    EXPECT_TRUE(g.isTip(0));
    EXPECT_FALSE(g.isTip(4));
    EXPECT_EQ(g.root(), 6);
    EXPECT_NO_THROW(g.validate());
}

TEST(GenealogyTest, RequiresAtLeastTwoTips) {
    EXPECT_THROW(Genealogy(1), InvariantError);
}

TEST(GenealogyTest, SiblingAndBranchLength) {
    const Genealogy g = makeFourTip();
    EXPECT_EQ(g.sibling(0), 1);
    EXPECT_EQ(g.sibling(4), 5);
    EXPECT_EQ(g.sibling(6), kNoNode);
    EXPECT_DOUBLE_EQ(g.branchLength(0), 1.0);
    EXPECT_DOUBLE_EQ(g.branchLength(4), 2.0);
    EXPECT_DOUBLE_EQ(g.branchLength(5), 1.0);
    EXPECT_THROW(g.branchLength(6), InvariantError);
}

TEST(GenealogyTest, UnlinkAndRelink) {
    Genealogy g = makeFourTip();
    g.unlink(0);
    EXPECT_EQ(g.node(0).parent, kNoNode);
    EXPECT_EQ(g.node(4).child[0], 1);
    EXPECT_EQ(g.node(4).child[1], kNoNode);
    g.link(4, 0);
    EXPECT_NO_THROW(g.validate());
}

TEST(GenealogyTest, LinkRejectsFullParent) {
    Genealogy g = makeFourTip();
    EXPECT_THROW(g.link(4, 2), InvariantError);
}

TEST(GenealogyTest, PostorderVisitsChildrenFirst) {
    const Genealogy g = makeFourTip();
    const auto order = g.postorder();
    EXPECT_EQ(order.size(), 7u);
    std::vector<int> pos(7);
    for (int i = 0; i < 7; ++i) pos[static_cast<std::size_t>(order[static_cast<std::size_t>(i)])] = i;
    for (NodeId id = 0; id < 7; ++id) {
        if (g.isTip(id)) continue;
        for (const NodeId c : g.node(id).child)
            EXPECT_LT(pos[static_cast<std::size_t>(c)], pos[static_cast<std::size_t>(id)]);
    }
    EXPECT_EQ(order.back(), g.root());
}

TEST(GenealogyTest, PreorderVisitsParentsFirst) {
    const Genealogy g = makeFourTip();
    const auto order = g.preorder();
    EXPECT_EQ(order.front(), g.root());
    std::vector<int> pos(7);
    for (int i = 0; i < 7; ++i) pos[static_cast<std::size_t>(order[static_cast<std::size_t>(i)])] = i;
    for (NodeId id = 0; id < 7; ++id) {
        if (g.isTip(id)) continue;
        for (const NodeId c : g.node(id).child)
            EXPECT_GT(pos[static_cast<std::size_t>(c)], pos[static_cast<std::size_t>(id)]);
    }
}

TEST(GenealogyTest, IntervalsMatchHandComputation) {
    const Genealogy g = makeFourTip();
    const auto ivs = g.intervals();
    ASSERT_EQ(ivs.size(), 3u);
    EXPECT_DOUBLE_EQ(ivs[0].begin, 0.0);
    EXPECT_DOUBLE_EQ(ivs[0].end, 1.0);
    EXPECT_EQ(ivs[0].lineages, 4);
    EXPECT_DOUBLE_EQ(ivs[1].begin, 1.0);
    EXPECT_DOUBLE_EQ(ivs[1].end, 2.0);
    EXPECT_EQ(ivs[1].lineages, 3);
    EXPECT_DOUBLE_EQ(ivs[2].end, 3.0);
    EXPECT_EQ(ivs[2].lineages, 2);
}

TEST(GenealogyTest, TmrcaAndTotalBranchLength) {
    const Genealogy g = makeFourTip();
    EXPECT_DOUBLE_EQ(g.tmrca(), 3.0);
    // Branches: tips 0,1 of length 1; tips 2,3 of length 2; node4 len 2; node5 len 1.
    EXPECT_DOUBLE_EQ(g.totalBranchLength(), 1 + 1 + 2 + 2 + 2 + 1);
}

TEST(GenealogyTest, ScaleTimes) {
    Genealogy g = makeFourTip();
    g.scaleTimes(2.0);
    EXPECT_DOUBLE_EQ(g.tmrca(), 6.0);
    EXPECT_DOUBLE_EQ(g.node(4).time, 2.0);
    EXPECT_THROW(g.scaleTimes(0.0), InvariantError);
}

TEST(GenealogyTest, TipNames) {
    Genealogy g = makeFourTip();
    EXPECT_EQ(g.tipNames()[0], "t1");
    g.setTipNames({"a", "b", "c", "d"});
    EXPECT_EQ(g.tipByName("c"), 2);
    EXPECT_EQ(g.tipByName("zz"), kNoNode);
    EXPECT_THROW(g.setTipNames({"onlyone"}), InvariantError);
}

TEST(GenealogyValidate, CatchesChildOlderThanParent) {
    Genealogy g = makeFourTip();
    g.node(4).time = 5.0;  // above its parent (root at 3)
    EXPECT_THROW(g.validate(), InvariantError);
}

TEST(GenealogyValidate, CatchesTipWithNonzeroTime) {
    Genealogy g = makeFourTip();
    g.node(2).time = 0.5;
    EXPECT_THROW(g.validate(), InvariantError);
}

TEST(GenealogyValidate, CatchesMissingRoot) {
    Genealogy g(2);
    EXPECT_THROW(g.validate(), InvariantError);
}

TEST(GenealogyValidate, CatchesNonBifurcatingInternal) {
    Genealogy g = makeFourTip();
    g.unlink(0);  // node 4 now has one child
    EXPECT_THROW(g.validate(), InvariantError);
}

TEST(GenealogyValidate, CatchesUnreachableNode) {
    Genealogy g = makeFourTip();
    // Detach the (2,3) clade: nodes 2,3,5 become unreachable.
    g.unlink(5);
    g.link(6, 1);  // give the root a second child again (1 is reused)
    // The structure is inconsistent in several ways; validate must throw.
    EXPECT_THROW(g.validate(), InvariantError);
}

TEST(GenealogyTest, EqualityIsStructural) {
    const Genealogy a = makeFourTip();
    Genealogy b = makeFourTip();
    EXPECT_TRUE(a == b);
    b.node(4).time = 1.5;
    EXPECT_FALSE(a == b);
}

}  // namespace
}  // namespace mpcgs
