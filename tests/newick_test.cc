#include "phylo/newick.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/error.h"

namespace mpcgs {
namespace {

TEST(NewickTest, ParsesSimpleUltrametricTree) {
    const Genealogy g = fromNewick("((a:1.0,b:1.0):2.0,c:3.0);");
    EXPECT_EQ(g.tipCount(), 3);
    EXPECT_DOUBLE_EQ(g.tmrca(), 3.0);
    const NodeId a = g.tipByName("a");
    const NodeId c = g.tipByName("c");
    ASSERT_NE(a, kNoNode);
    ASSERT_NE(c, kNoNode);
    EXPECT_EQ(g.node(c).parent, g.root());
    EXPECT_DOUBLE_EQ(g.node(g.node(a).parent).time, 1.0);
}

TEST(NewickTest, RoundTripPreservesStructure) {
    const std::string text = "((a:0.5,b:0.5):1.5,(c:1.25,d:1.25):0.75);";
    const Genealogy g = fromNewick(text);
    const Genealogy g2 = fromNewick(toNewick(g));
    EXPECT_EQ(g2.tipCount(), g.tipCount());
    EXPECT_NEAR(g2.tmrca(), g.tmrca(), 1e-9);
    // Same parent heights for corresponding named tips.
    for (const auto& name : {"a", "b", "c", "d"}) {
        const NodeId t1 = g.tipByName(name);
        const NodeId t2 = g2.tipByName(name);
        EXPECT_NEAR(g.node(g.node(t1).parent).time, g2.node(g2.node(t2).parent).time, 1e-9);
    }
}

TEST(NewickTest, NamesUnnamedTipsSequentially) {
    const Genealogy g = fromNewick("((:1,:1):1,:2);");
    EXPECT_EQ(g.tipNames().size(), 3u);
    EXPECT_NE(g.tipByName("t1"), kNoNode);
    EXPECT_NE(g.tipByName("t3"), kNoNode);
}

TEST(NewickTest, QuotedLabels) {
    const Genealogy g = fromNewick("(('taxon one':1,'taxon two':1):1,three:2);");
    EXPECT_NE(g.tipByName("taxon one"), kNoNode);
    EXPECT_NE(g.tipByName("taxon two"), kNoNode);
}

TEST(NewickTest, ToleratesWhitespace) {
    const Genealogy g = fromNewick("  ( ( a : 1 , b : 1 ) : 1 , c : 2 ) ;  ");
    EXPECT_EQ(g.tipCount(), 3);
}

TEST(NewickTest, RejectsNonUltrametric) {
    EXPECT_THROW(fromNewick("((a:1.0,b:2.0):1.0,c:3.0);"), ParseError);
}

TEST(NewickTest, RejectsMalformedInput) {
    EXPECT_THROW(fromNewick("((a:1,b:1):1,c:2"), ParseError);      // missing ')'
    EXPECT_THROW(fromNewick("(a:1);"), ParseError);                // single tip
    EXPECT_THROW(fromNewick("((a:1,b:1):1,c:2); junk"), ParseError);
    EXPECT_THROW(fromNewick("((a:1,b:1,c:1):1,d:2);"), ParseError);  // trifurcation
}

TEST(NewickTest, ParsesMsStyleOutput) {
    // An actual tree produced by Hudson's ms (ultrametric, unnamed inner
    // nodes, high-precision branch lengths).
    const std::string ms =
        "(((((t7:0.001417444849,t2:0.001417444849):0.0306052032,t8:0.03202264805):"
        "0.05782529777,t6:0.08984794582):0.4405361445,(t1:0.05520233555,t5:0.05520233555):"
        "0.4751817548):1.338319544,(t4:0.1298108551,t3:0.1298108551):1.738892779);";
    const Genealogy g = fromNewick(ms);
    EXPECT_EQ(g.tipCount(), 8);
    EXPECT_NEAR(g.tmrca(), 1.338319544 + 0.4405361445 + 0.05782529777 + 0.0306052032 +
                               0.001417444849,
                1e-6);
    EXPECT_NO_THROW(g.validate());
}

TEST(NewickTest, WriterEmitsParsableBranchLengths) {
    const Genealogy g = fromNewick("((a:0.001,b:0.001):1e-4,c:0.0011);", 1e-3);
    const std::string out = toNewick(g);
    EXPECT_NE(out.find("a:"), std::string::npos);
    EXPECT_EQ(out.back(), ';');
}

}  // namespace
}  // namespace mpcgs
