// Table-driven robustness corpus: every file under tests/data/corrupt/
// must be REJECTED by its format's parser with a clean library Error
// (ParseError/ConfigError) — never accepted, never crashed, never a
// foreign exception. Complements the randomized mutations of
// fuzz_parser_test.cc with curated realistic failure shapes (bad counts,
// truncation, non-ACGT runs, duplicate names, empty files, manifest and
// pop-map mistakes). Drop a new file in the directory and it is covered
// automatically; name it with the format's extension (.phy/.fa/.nex, or
// manifest_*/popmap_* for the loaders).
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "seq/dataset.h"
#include "seq/fasta.h"
#include "seq/nexus.h"
#include "seq/phylip.h"
#include "util/error.h"

#ifndef MPCGS_TEST_DATA_DIR
#error "MPCGS_TEST_DATA_DIR must point at tests/data (set by CMakeLists.txt)"
#endif

namespace mpcgs {
namespace {

namespace fs = std::filesystem;

std::vector<fs::path> corpusFiles() {
    std::vector<fs::path> files;
    for (const auto& entry : fs::directory_iterator(fs::path(MPCGS_TEST_DATA_DIR) / "corrupt"))
        if (entry.is_regular_file()) files.push_back(entry.path());
    std::sort(files.begin(), files.end());
    return files;
}

/// Dispatch by file name the way the real loaders do.
void parseByKind(const fs::path& file) {
    const std::string stem = file.stem().string();
    if (stem.rfind("manifest_", 0) == 0) {
        Dataset::fromManifest(file.string());
        return;
    }
    if (stem.rfind("popmap_", 0) == 0) {
        readPopMap(file.string());
        return;
    }
    readAlignmentFile(file.string());  // extension-sniffed .phy/.fa/.nex
}

TEST(ParserCorpusTest, CorpusIsNonTrivial) {
    EXPECT_GE(corpusFiles().size(), 20u);
}

TEST(ParserCorpusTest, EveryCorruptInputIsRejectedCleanly) {
    for (const fs::path& file : corpusFiles()) {
        bool rejected = false;
        try {
            parseByKind(file);
        } catch (const Error&) {
            rejected = true;  // the one acceptable outcome
        } catch (const std::exception& e) {
            FAIL() << file.filename() << " threw a non-library exception: " << e.what();
        }
        EXPECT_TRUE(rejected) << file.filename() << " was accepted but is corrupt";
    }
}

TEST(ParserCorpusTest, SpecificFailuresAreDiagnosable) {
    const fs::path dir = fs::path(MPCGS_TEST_DATA_DIR) / "corrupt";
    // A few load-bearing cases pinned to their exact error category, so a
    // regression to "accept garbage" or to a crash cannot hide behind the
    // catch-all sweep.
    EXPECT_THROW(readPhylipFile((dir / "phylip_bad_count.phy").string()), ParseError);
    EXPECT_THROW(readPhylipFile((dir / "phylip_dup_names.phy").string()), ParseError);
    EXPECT_THROW(readPhylipFile((dir / "phylip_nonacgt.phy").string()), ParseError);
    EXPECT_THROW(readPhylipFile((dir / "phylip_bomb_header.phy").string()), ParseError);
    EXPECT_THROW(readFastaFile((dir / "fasta_dup_names.fa").string()), ParseError);
    EXPECT_THROW(readFastaFile((dir / "fasta_ragged.fa").string()), ParseError);
    EXPECT_THROW(readNexusFile((dir / "nexus_truncated.nex").string()), ParseError);
    EXPECT_THROW(readPopMap((dir / "popmap_dup_seq.txt").string()), ParseError);
    EXPECT_THROW(Dataset::fromManifest((dir / "manifest_bad_rate.txt").string()),
                 ConfigError);
    EXPECT_THROW(Dataset::fromManifest((dir / "manifest_empty.txt").string()), ConfigError);
}

TEST(PopMapTest, ManifestPopColumnAssignsPopulations) {
    const std::string dir = ::testing::TempDir();
    {
        std::ofstream aln(dir + "popcol_locus.phy");
        aln << " 4 8\ns1 ACGTACGT\ns2 ACGTACGA\ns3 TTGTACGT\ns4 TTGAACGT\n";
        std::ofstream pop(dir + "popcol_map.txt");
        pop << "s1 east\ns2 east\ns3 west\ns4 west\n";
        std::ofstream man(dir + "popcol_manifest.txt");
        man << "popcol_locus.phy name=shore rate=1.0 pop=popcol_map.txt\n";
    }
    const Dataset ds = Dataset::fromManifest(dir + "popcol_manifest.txt");
    ASSERT_EQ(ds.locusCount(), 1u);
    EXPECT_EQ(ds.populationCount(), 2);
    EXPECT_EQ(ds.populationNames()[0], "east");
    const std::vector<int> expected{0, 0, 1, 1};
    EXPECT_EQ(ds.locus(0).populations, expected);

    // A pop-map missing one of the locus's sequences must fail loudly.
    {
        std::ofstream pop(dir + "popcol_map.txt");
        pop << "s1 east\ns2 east\ns3 west\n";  // s4 missing
    }
    EXPECT_THROW(Dataset::fromManifest(dir + "popcol_manifest.txt"), ConfigError);
}

TEST(PopMapTest, ValidMapParsesAndInternsInFirstAppearanceOrder) {
    const std::string path = ::testing::TempDir() + "popmap_ok.txt";
    {
        std::ofstream out(path);
        out << "# seaside samples\n"
            << "s1 north\n"
            << "s2 south\n"
            << "s3 north   # back home\n";
    }
    const PopMap map = readPopMap(path);
    EXPECT_EQ(map.populationCount(), 2);
    EXPECT_EQ(map.populations[0], "north");
    EXPECT_EQ(map.populations[1], "south");
    EXPECT_EQ(map.bySequence.at("s1"), 0);
    EXPECT_EQ(map.bySequence.at("s2"), 1);
    EXPECT_EQ(map.bySequence.at("s3"), 0);
    std::remove(path.c_str());
}

}  // namespace
}  // namespace mpcgs
