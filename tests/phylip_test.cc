#include "seq/phylip.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace mpcgs {
namespace {

TEST(PhylipTest, ParsesRelaxedFormat) {
    const std::string text =
        " 3 8\n"
        "alpha ACGTACGT\n"
        "beta  ACGTACGA\n"
        "gamma TTGTACGT\n";
    const Alignment a = readPhylipString(text);
    EXPECT_EQ(a.sequenceCount(), 3u);
    EXPECT_EQ(a.length(), 8u);
    EXPECT_EQ(a.sequence(0).name(), "alpha");
    EXPECT_EQ(a.sequence(2).toString(), "TTGTACGT");
}

TEST(PhylipTest, ParsesStrictTenColumnNames) {
    const std::string text =
        "2 4\n"
        "seqA______ACGT\n"
        "seqB______TGCA\n";
    // Without whitespace the first 10 columns are the name field.
    const Alignment a = readPhylipString(text);
    EXPECT_EQ(a.sequence(0).name(), "seqA______");
    EXPECT_EQ(a.sequence(0).toString(), "ACGT");
}

TEST(PhylipTest, ParsesInterleavedContinuation) {
    const std::string text =
        " 2 8\n"
        "one  ACGT\n"
        "two  TGCA\n"
        "\n"
        "ACGT\n"
        "TGCA\n";
    const Alignment a = readPhylipString(text);
    EXPECT_EQ(a.length(), 8u);
    EXPECT_EQ(a.sequence(0).toString(), "ACGTACGT");
    EXPECT_EQ(a.sequence(1).toString(), "TGCATGCA");
}

TEST(PhylipTest, SequenceDataMayContainSpaces) {
    const std::string text =
        " 2 8\n"
        "one  ACGT ACGT\n"
        "two  TGCA TGCA\n";
    const Alignment a = readPhylipString(text);
    EXPECT_EQ(a.sequence(0).toString(), "ACGTACGT");
}

TEST(PhylipTest, RoundTrip) {
    const Alignment a({Sequence::fromString("first", "ACGTN"),
                       Sequence::fromString("second", "TTGCA"),
                       Sequence::fromString("third", "GGGCC")});
    const Alignment b = readPhylipString(writePhylipString(a));
    EXPECT_EQ(b.sequenceCount(), 3u);
    for (std::size_t i = 0; i < 3; ++i)
        EXPECT_EQ(b.sequence(i).toString(), a.sequence(i).toString());
    EXPECT_EQ(b.sequence(0).name(), "first");
}

TEST(PhylipTest, RejectsBadHeader) {
    EXPECT_THROW(readPhylipString("nonsense\n"), ParseError);
    EXPECT_THROW(readPhylipString(" 1 10\nonly AAAAAAAAAA\n"), ParseError);
    EXPECT_THROW(readPhylipString(" 2 0\n"), ParseError);
}

TEST(PhylipTest, RejectsLengthMismatch) {
    EXPECT_THROW(readPhylipString(" 2 8\none ACGT\ntwo TGCATGCA\n"), ParseError);
}

TEST(PhylipTest, RejectsInvalidCharacters) {
    EXPECT_THROW(readPhylipString(" 2 4\none ACQT\ntwo ACGT\n"), ParseError);
}

TEST(PhylipTest, RejectsTruncatedFile) {
    EXPECT_THROW(readPhylipString(" 3 4\none ACGT\ntwo ACGT\n"), ParseError);
}

TEST(PhylipTest, MissingFileThrows) {
    EXPECT_THROW(readPhylipFile("/nonexistent/path.phy"), ParseError);
}

}  // namespace
}  // namespace mpcgs
