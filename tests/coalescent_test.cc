#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "coalescent/prior.h"
#include "coalescent/simulator.h"
#include "rng/mt19937.h"
#include "util/error.h"
#include "util/stats.h"

namespace mpcgs {
namespace {

TEST(CoalescentDensity, MatchesEq17) {
    // p_k(t) = (2/theta) exp(-k(k-1) t / theta).
    const double theta = 1.5, t = 0.3;
    for (const int k : {2, 3, 5, 10}) {
        const double expect = std::log(2.0 / theta) - k * (k - 1) * t / theta;
        EXPECT_NEAR(logCoalescentWaitDensity(k, t, theta), expect, 1e-12);
    }
}

TEST(CoalescentDensity, TotalRateIntegratesToOne) {
    // Summed over the k(k-1)/2 equivalent pairs, the waiting time density
    // integrates to 1 (trapezoid quadrature).
    const double theta = 0.8;
    const int k = 4;
    const double pairs = k * (k - 1) / 2.0;
    double integral = 0.0;
    const double dt = 1e-4;
    for (double t = 0.0; t < 4.0; t += dt) {
        integral += pairs * std::exp(logCoalescentWaitDensity(k, t + dt / 2, theta)) * dt;
    }
    EXPECT_NEAR(integral, 1.0, 1e-3);
}

TEST(CoalescentPrior, MatchesHandComputedTree) {
    // 3-tip tree with intervals: k=3 for t in [0,0.2), k=2 for [0.2,0.9).
    std::vector<CoalInterval> ivs{{0.0, 0.2, 3}, {0.2, 0.9, 2}};
    const double theta = 2.0;
    const double expect = 2.0 * std::log(2.0 / theta) -
                          (6.0 * 0.2 + 2.0 * 0.7) / theta;
    EXPECT_NEAR(logCoalescentPrior(ivs, theta), expect, 1e-12);
}

TEST(CoalescentPrior, GenealogyOverloadAgrees) {
    Genealogy g(3);
    g.node(3).time = 0.2;
    g.node(4).time = 0.9;
    g.link(3, 0);
    g.link(3, 1);
    g.link(4, 3);
    g.link(4, 2);
    g.setRoot(4);
    std::vector<CoalInterval> ivs{{0.0, 0.2, 3}, {0.2, 0.9, 2}};
    EXPECT_NEAR(logCoalescentPrior(g, 1.3),
                logCoalescentPrior(std::span<const CoalInterval>(ivs), 1.3), 1e-12);
}

TEST(CoalescentPrior, DerivativeMatchesNumeric) {
    std::vector<CoalInterval> ivs{{0.0, 0.1, 4}, {0.1, 0.35, 3}, {0.35, 1.2, 2}};
    for (const double theta : {0.3, 1.0, 4.0}) {
        const double h = 1e-6 * theta;
        const double numeric = (logCoalescentPrior(ivs, theta + h) -
                                logCoalescentPrior(ivs, theta - h)) /
                               (2.0 * h);
        EXPECT_NEAR(dLogCoalescentPrior(ivs, theta), numeric, 1e-5 * std::fabs(numeric) + 1e-8);
    }
}

TEST(CoalescentPrior, SingleTreeMleIsStationaryPoint) {
    std::vector<CoalInterval> ivs{{0.0, 0.1, 4}, {0.1, 0.35, 3}, {0.35, 1.2, 2}};
    const double mle = singleTreeThetaMle(ivs);
    EXPECT_NEAR(dLogCoalescentPrior(ivs, mle), 0.0, 1e-10);
    // And it is a maximum: slightly off values give lower prior.
    EXPECT_GT(logCoalescentPrior(ivs, mle), logCoalescentPrior(ivs, mle * 1.1));
    EXPECT_GT(logCoalescentPrior(ivs, mle), logCoalescentPrior(ivs, mle * 0.9));
}

TEST(CoalescentPrior, RejectsBadArguments) {
    std::vector<CoalInterval> ivs{{0.0, 0.1, 2}};
    EXPECT_THROW(logCoalescentPrior(ivs, 0.0), InvariantError);
    EXPECT_THROW(logCoalescentWaitDensity(1, 0.1, 1.0), InvariantError);
}

TEST(Simulator, ProducesValidGenealogies) {
    Mt19937 rng(17);
    for (int rep = 0; rep < 20; ++rep) {
        const Genealogy g = simulateCoalescent(7, 1.0, rng);
        EXPECT_NO_THROW(g.validate());
        EXPECT_EQ(g.tipCount(), 7);
        const auto ivs = g.intervals();
        EXPECT_EQ(ivs.size(), 6u);
        EXPECT_EQ(ivs[0].lineages, 7);
        EXPECT_EQ(ivs.back().lineages, 2);
    }
}

TEST(Simulator, PairwiseCoalescenceTimeMean) {
    // For n = 2, E[TMRCA] = theta / 2 under the Eq. 17 rate convention.
    Mt19937 rng(18);
    const double theta = 2.0;
    RunningStats rs;
    for (int rep = 0; rep < 20000; ++rep)
        rs.add(simulateCoalescent(2, theta, rng).tmrca());
    EXPECT_NEAR(rs.mean(), theta / 2.0, 0.03);
    // Exponential: variance = mean^2.
    EXPECT_NEAR(rs.variance(), theta * theta / 4.0, 0.06);
}

TEST(Simulator, TmrcaMeanMatchesTheory) {
    // E[TMRCA] = theta (1 - 1/n).
    Mt19937 rng(19);
    const double theta = 1.0;
    const int n = 6;
    RunningStats rs;
    for (int rep = 0; rep < 20000; ++rep)
        rs.add(simulateCoalescent(n, theta, rng).tmrca());
    EXPECT_NEAR(rs.mean(), theta * (1.0 - 1.0 / n), 0.02);
}

TEST(Simulator, IntervalMeansMatchTheory) {
    // E[T_k] = theta / (k(k-1)) for each interval.
    Mt19937 rng(20);
    const double theta = 1.0;
    const int n = 5;
    std::vector<RunningStats> perInterval(static_cast<std::size_t>(n - 1));
    for (int rep = 0; rep < 20000; ++rep) {
        const auto ivs = simulateCoalescent(n, theta, rng).intervals();
        for (std::size_t i = 0; i < ivs.size(); ++i) perInterval[i].add(ivs[i].length());
    }
    for (std::size_t i = 0; i < perInterval.size(); ++i) {
        const double k = static_cast<double>(n) - static_cast<double>(i);
        EXPECT_NEAR(perInterval[i].mean(), theta / (k * (k - 1.0)), 0.01)
            << "interval " << i;
    }
}

TEST(Simulator, SampledTreesScoreSaneUnderPrior) {
    // Average log prior of simulated trees should be near the expected
    // log-density (weak sanity bound: finite and not wildly off).
    Mt19937 rng(21);
    RunningStats rs;
    for (int rep = 0; rep < 2000; ++rep)
        rs.add(logCoalescentPrior(simulateCoalescent(4, 1.0, rng), 1.0));
    EXPECT_TRUE(std::isfinite(rs.mean()));
    // Prior evaluated at the generating theta should beat a far-off theta
    // on average (consistency of Eq. 18 with the generator).
    Mt19937 rng2(21);
    RunningStats off;
    for (int rep = 0; rep < 2000; ++rep)
        off.add(logCoalescentPrior(simulateCoalescent(4, 1.0, rng2), 20.0));
    EXPECT_GT(rs.mean(), off.mean());
}

TEST(Simulator, RejectsBadArguments) {
    Mt19937 rng(1);
    EXPECT_THROW(simulateCoalescent(1, 1.0, rng), ConfigError);
    EXPECT_THROW(simulateCoalescent(4, 0.0, rng), ConfigError);
}

}  // namespace
}  // namespace mpcgs
