#include <array>
#include <cstdint>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "rng/mt19937.h"
#include "rng/philox.h"

namespace mpcgs {
namespace {

TEST(Mt19937Test, MatchesStdMt19937BitExact) {
    Mt19937 ours(5489u);
    std::mt19937 ref(5489u);
    for (int i = 0; i < 2000; ++i) EXPECT_EQ(ours.nextU32(), ref());
}

TEST(Mt19937Test, TenThousandthValueIsReferenceConstant) {
    // The C++ standard fixes the 10000th consecutive invocation of a
    // default-constructed mt19937 to 4123659995.
    Mt19937 rng(5489u);
    std::uint32_t v = 0;
    for (int i = 0; i < 10000; ++i) v = rng.nextU32();
    EXPECT_EQ(v, 4123659995u);
}

TEST(Mt19937Test, SeedsProduceDifferentStreams) {
    Mt19937 a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a.nextU32() == b.nextU32()) ++same;
    EXPECT_LT(same, 3);
}

TEST(Mt19937Test, ReseedReproduces) {
    Mt19937 rng(777);
    std::vector<std::uint32_t> first;
    for (int i = 0; i < 50; ++i) first.push_back(rng.nextU32());
    rng.reseed(777);
    for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.nextU32(), first[static_cast<std::size_t>(i)]);
}

TEST(PhiloxTest, KnownAnswerZeroKeyZeroCounter) {
    // Random123 v1.14.0 known-answer vectors for philox4x32-10.
    const auto out = philox4x32({0u, 0u, 0u, 0u}, {0u, 0u});
    EXPECT_EQ(out[0], 0x6627e8d5u);
    EXPECT_EQ(out[1], 0xe169c58du);
    EXPECT_EQ(out[2], 0xbc57ac4cu);
    EXPECT_EQ(out[3], 0x9b00dbd8u);
}

TEST(PhiloxTest, KnownAnswerAllOnes) {
    const auto out = philox4x32({0xffffffffu, 0xffffffffu, 0xffffffffu, 0xffffffffu},
                                {0xffffffffu, 0xffffffffu});
    EXPECT_EQ(out[0], 0x408f276du);
    EXPECT_EQ(out[1], 0x41c83b0eu);
    EXPECT_EQ(out[2], 0xa20bc7c6u);
    EXPECT_EQ(out[3], 0x6d5451fdu);
}

TEST(PhiloxTest, KnownAnswerPiDigits) {
    const auto out = philox4x32({0x243f6a88u, 0x85a308d3u, 0x13198a2eu, 0x03707344u},
                                {0xa4093822u, 0x299f31d0u});
    EXPECT_EQ(out[0], 0xd16cfe09u);
    EXPECT_EQ(out[1], 0x94fdccebu);
    EXPECT_EQ(out[2], 0x5001e420u);
    EXPECT_EQ(out[3], 0x24126ea1u);
}

TEST(PhiloxTest, StreamsAreDecorrelated) {
    Philox a(42, 0), b(42, 1);
    int same = 0;
    for (int i = 0; i < 1000; ++i)
        if (a.nextU32() == b.nextU32()) ++same;
    EXPECT_LT(same, 5);
}

TEST(PhiloxTest, SplitMatchesDirectConstruction) {
    Philox base(99, 0);
    Philox split = base.split(7);
    Philox direct(99, 7);
    for (int i = 0; i < 64; ++i) EXPECT_EQ(split.nextU32(), direct.nextU32());
}

TEST(PhiloxTest, SkipBlocksMatchesDraining) {
    Philox a(5, 3);
    Philox b(5, 3);
    for (int i = 0; i < 10 * 4; ++i) a.nextU32();  // 10 blocks
    b.skipBlocks(10);
    for (int i = 0; i < 32; ++i) EXPECT_EQ(a.nextU32(), b.nextU32());
}

TEST(PhiloxTest, DeterministicAcrossInstances) {
    Philox a(123, 5), b(123, 5);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.nextU32(), b.nextU32());
}

// --- distribution helpers ----------------------------------------------------

TEST(RngHelpers, Uniform01InRange) {
    Philox rng(1, 0);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform01();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(RngHelpers, Uniform01MeanIsHalf) {
    Philox rng(2, 0);
    double acc = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) acc += rng.uniform01();
    EXPECT_NEAR(acc / n, 0.5, 0.005);
}

TEST(RngHelpers, BelowIsUnbiased) {
    Mt19937 rng(3);
    std::array<int, 7> counts{};
    const int n = 70000;
    for (int i = 0; i < n; ++i) counts[static_cast<std::size_t>(rng.below(7))]++;
    for (const int c : counts) EXPECT_NEAR(c, n / 7.0, 5.0 * std::sqrt(n / 7.0));
}

TEST(RngHelpers, BelowThrowsOnZero) {
    Mt19937 rng(4);
    EXPECT_THROW(rng.below(0), std::invalid_argument);
}

TEST(RngHelpers, BetweenCoversRangeInclusive) {
    Mt19937 rng(5);
    bool sawLo = false, sawHi = false;
    for (int i = 0; i < 2000; ++i) {
        const long long v = rng.between(-2, 3);
        EXPECT_GE(v, -2);
        EXPECT_LE(v, 3);
        sawLo |= (v == -2);
        sawHi |= (v == 3);
    }
    EXPECT_TRUE(sawLo);
    EXPECT_TRUE(sawHi);
}

TEST(RngHelpers, ExponentialMeanAndPositivity) {
    Mt19937 rng(6);
    const double rate = 2.5;
    double acc = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        const double x = rng.exponential(rate);
        EXPECT_GT(x, 0.0);
        acc += x;
    }
    EXPECT_NEAR(acc / n, 1.0 / rate, 0.005);
}

TEST(RngHelpers, ExponentialRejectsBadRate) {
    Mt19937 rng(7);
    EXPECT_THROW(rng.exponential(0.0), std::invalid_argument);
    EXPECT_THROW(rng.exponential(-1.0), std::invalid_argument);
}

TEST(RngHelpers, NormalMoments) {
    Mt19937 rng(8);
    const int n = 200000;
    double m1 = 0.0, m2 = 0.0;
    for (int i = 0; i < n; ++i) {
        const double x = rng.normal();
        m1 += x;
        m2 += x * x;
    }
    EXPECT_NEAR(m1 / n, 0.0, 0.01);
    EXPECT_NEAR(m2 / n, 1.0, 0.02);
}

TEST(RngHelpers, CategoricalFollowsWeights) {
    Mt19937 rng(9);
    const std::vector<double> w{1.0, 2.0, 7.0};
    std::array<int, 3> counts{};
    const int n = 100000;
    for (int i = 0; i < n; ++i) counts[rng.categorical(w)]++;
    EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
    EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.2, 0.01);
    EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.7, 0.01);
}

TEST(RngHelpers, CategoricalEdgeCases) {
    Mt19937 rng(10);
    EXPECT_THROW(rng.categorical({}), std::invalid_argument);
    const std::vector<double> zero{0.0, 0.0};
    EXPECT_THROW(rng.categorical(zero), std::invalid_argument);
    const std::vector<double> neg{1.0, -0.5};
    EXPECT_THROW(rng.categorical(neg), std::invalid_argument);
    const std::vector<double> onehot{0.0, 5.0, 0.0};
    for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.categorical(onehot), 1u);
}

TEST(RngHelpers, CategoricalFromLogMatchesLinear) {
    Mt19937 a(11), b(11);
    const std::vector<double> w{0.5, 0.25, 0.25};
    const std::vector<double> lw{std::log(0.5) - 500, std::log(0.25) - 500,
                                 std::log(0.25) - 500};
    for (int i = 0; i < 500; ++i) EXPECT_EQ(a.categorical(w), b.categoricalFromLog(lw));
}

TEST(RngHelpers, ChiSquareUniformityOfU32LowBits) {
    // 16-bin chi-square on the low 4 bits of Philox output.
    Philox rng(77, 0);
    std::array<double, 16> counts{};
    const int n = 160000;
    for (int i = 0; i < n; ++i) counts[rng.nextU32() & 0xF] += 1.0;
    double chi2 = 0.0;
    const double expect = n / 16.0;
    for (const double c : counts) chi2 += (c - expect) * (c - expect) / expect;
    // 15 dof: P(chi2 > 37.7) ~ 0.001.
    EXPECT_LT(chi2, 37.7);
}

}  // namespace
}  // namespace mpcgs
