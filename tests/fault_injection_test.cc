// Fault-injection matrix: every fail point registered in the binary is
// swept through a pipeline that reaches it, and each injected fault must
// surface as the documented typed error — never a crash, a hang, a silent
// success, or a stray .tmp file. The sweep iterates registeredPoints()
// itself, so adding a new site without teaching this matrix about it
// fails the test.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <map>
#include <string>

#include <gtest/gtest.h>

#include "coalescent/simulator.h"
#include "core/driver.h"
#include "core/smc_estimator.h"
#include "core/supervisor.h"
#include "mcmc/checkpoint.h"
#include "obs/metrics.h"
#include "rng/mt19937.h"
#include "seq/dataset.h"
#include "seq/seqgen.h"
#include "serve/serve.h"
#include "smc/online_update.h"
#include "util/error.h"
#include "util/failpoint.h"

namespace mpcgs {
namespace {

class FaultInjectionTest : public ::testing::Test {
  protected:
    void SetUp() override {
        failpoint::reset();
        // Numeric fault dumps land in the test temp dir, not the cwd.
        ASSERT_EQ(setenv("MPCGS_FAULT_DIR", ::testing::TempDir().c_str(), 1), 0);
    }
    void TearDown() override {
        failpoint::reset();
        unsetenv("MPCGS_FAULT_DIR");
    }

    static std::string tempPath(const std::string& name) {
        return ::testing::TempDir() + name;
    }

    static bool exists(const std::string& path) {
        return std::ifstream(path).good();
    }

    static Alignment smallAlignment() {
        Mt19937 rng(3);
        const Genealogy g = simulateCoalescent(6, 1.0, rng);
        SeqGenOptions so;
        so.length = 100;
        const auto model = makeF84(2.0, kUniformFreqs);
        return simulateSequences(g, *model, so, rng);
    }

    static Dataset smallDataset() {
        Dataset ds;
        ds.add(Locus{"locus0", smallAlignment(), 1.0, {}});
        return ds;
    }

    /// Run the MCMC estimator with snapshots enabled (reaches the whole
    /// checkpoint WRITE path and mcmc.logpost).
    static void runMcmcWithCheckpoint(const std::string& ckpt,
                                      const RunSupervisor* supervisor = nullptr) {
        MpcgsOptions opts;
        opts.theta0 = 1.0;
        opts.emIterations = 2;
        opts.samplesPerIteration = 150;
        opts.strategy = Strategy::SerialMh;
        opts.seed = 77;
        opts.checkpointPath = ckpt;
        opts.checkpointIntervalTicks = 5;
        opts.supervisor = supervisor;
        estimateTheta(smallAlignment(), opts);
    }

    /// Produce a healthy snapshot, then resume with the reader fail point
    /// armed (reaches the checkpoint READ path).
    static void runResume(const std::string& ckpt) {
        MpcgsOptions opts;
        opts.theta0 = 1.0;
        opts.emIterations = 2;
        opts.samplesPerIteration = 150;
        opts.strategy = Strategy::SerialMh;
        opts.seed = 77;
        opts.checkpointPath = ckpt;
        opts.checkpointIntervalTicks = 5;
        opts.resume = true;
        estimateTheta(smallAlignment(), opts);
    }

    static void runSmc() {
        SmcEstimateOptions opts;
        opts.theta0 = 1.0;
        opts.smc.particles = 32;
        opts.seed = 19;
        estimateThetaSmc(smallDataset(), opts);
    }

    static void runPmmhSmall() {
        PmmhEstimateOptions opts;
        opts.theta0 = 1.0;
        opts.samples = 20;
        opts.pmmh.chains = 2;
        opts.pmmh.smc.particles = 16;
        opts.pmmh.seed = 23;
        runPmmh(smallDataset(), opts);
    }
};

TEST_F(FaultInjectionTest, EveryRegisteredPointFiresItsDocumentedTypedError) {
    const std::string ckpt = tempPath("fault_matrix.mpck");

    // One scenario per registered point: the spec to arm and a runner that
    // provably reaches the site, plus the error type the caller must see.
    enum class Expect { Checkpoint, Resume, Numeric, Injected, Interrupted, Io };
    struct Scenario {
        std::string spec;
        Expect expect;
        std::function<void()> run;
    };
    const auto mcmcWrite = [&] { runMcmcWithCheckpoint(ckpt); };
    std::map<std::string, Scenario> scenarios;
    scenarios["checkpoint.open"] =
        Scenario{"checkpoint.open=once:errno=EACCES", Expect::Checkpoint, mcmcWrite};
    scenarios["checkpoint.write"] =
        Scenario{"checkpoint.write=once:errno=ENOSPC", Expect::Checkpoint, mcmcWrite};
    scenarios["checkpoint.fsync"] =
        Scenario{"checkpoint.fsync=once:errno=ENOSPC", Expect::Checkpoint, mcmcWrite};
    scenarios["checkpoint.rename"] =
        Scenario{"checkpoint.rename=once:errno=EIO", Expect::Checkpoint, mcmcWrite};
    // READ faults arm every(1), not once: a single read failure is
    // deliberately survivable (the resume falls back to the .prev
    // generation), so forcing the typed ResumeError needs both
    // generations to fail.
    scenarios["checkpoint.read.open"] =
        Scenario{"checkpoint.read.open=every(1):errno=EACCES", Expect::Resume,
                 [&] { runResume(ckpt); }};
    scenarios["checkpoint.read"] = Scenario{"checkpoint.read=every(1):errno=EIO",
                                            Expect::Resume, [&] { runResume(ckpt); }};
    scenarios["mcmc.logpost"] =
        Scenario{"mcmc.logpost=once:nan", Expect::Numeric, [&] { runMcmcWithCheckpoint(ckpt); }};
    scenarios["smc.weight"] = Scenario{"smc.weight=once:nan", Expect::Numeric, [] { runSmc(); }};
    scenarios["smc.collapse"] =
        Scenario{"smc.collapse=once:nan", Expect::Numeric, [] { runSmc(); }};
    scenarios["pmmh.logz"] =
        Scenario{"pmmh.logz=once:nan", Expect::Numeric, [] { runPmmhSmall(); }};
    // Online/serve sites run against a small warm posterior built from the
    // first 5 sequences; the 6th is the grafted arrival.
    const auto onlineState = [] {
        const Alignment full = smallAlignment();
        const std::vector<Sequence> head(full.sequences().begin(),
                                         full.sequences().end() - 1);
        SmcOptions smc;
        smc.particles = 16;
        return initOnlineState(Alignment(head), 1.0, smc, "F81", 5);
    };
    scenarios["online.reweight"] =
        Scenario{"online.reweight=once:nan", Expect::Numeric, [&] {
                     OnlineState st = onlineState();
                     OnlineSmcUpdater updater(st, OnlineOptions{});
                     updater.addSequence(smallAlignment().sequences().back());
                 }};
    scenarios["serve.accept"] = Scenario{"serve.accept=once", Expect::Injected, [&] {
                                             ServeSession session(onlineState(), "",
                                                                  OnlineOptions{});
                                             session.handleLine("{\"job\":\"logz\"}");
                                         }};
    // Metrics/trace emission: a lost snapshot of a finished run is an
    // operational I/O fault (exit 6), same slot as checkpoint I/O.
    scenarios["obs.emit"] =
        Scenario{"obs.emit=once:errno=ENOSPC", Expect::Io,
                 [&] { obs::writeMetricsFile(tempPath("fault_metrics.json")); }};
    scenarios["supervisor.stop"] = Scenario{"supervisor.stop=once", Expect::Interrupted, [&] {
                                                RunSupervisor::Config cfg;
                                                cfg.handleSignals = false;
                                                RunSupervisor sv(cfg);
                                                runMcmcWithCheckpoint(ckpt, &sv);
                                            }};

    for (const auto& point : failpoint::registeredPoints()) {
        const auto it = scenarios.find(point.name);
        ASSERT_NE(it, scenarios.end())
            << "fail point '" << point.name << "' has no matrix scenario — add one";
        const Scenario& sc = it->second;

        // The resume scenarios need a healthy snapshot on disk first; the
        // write scenarios need a clean slate so litter checks mean something.
        failpoint::reset();
        std::remove(ckpt.c_str());
        std::remove((ckpt + ".prev").c_str());
        std::remove((ckpt + ".tmp").c_str());
        if (sc.expect == Expect::Resume) runMcmcWithCheckpoint(ckpt);

        failpoint::configure(sc.spec);
        try {
            sc.run();
            FAIL() << "armed fail point '" << point.name << "' did not surface an error";
        } catch (const InterruptedError& e) {
            EXPECT_EQ(sc.expect, Expect::Interrupted) << point.name << ": " << e.what();
        } catch (const ResumeError& e) {
            EXPECT_EQ(sc.expect, Expect::Resume) << point.name << ": " << e.what();
        } catch (const NumericError& e) {
            EXPECT_EQ(sc.expect, Expect::Numeric) << point.name << ": " << e.what();
        } catch (const CheckpointError& e) {
            EXPECT_EQ(sc.expect, Expect::Checkpoint) << point.name << ": " << e.what();
        } catch (const IoError& e) {
            EXPECT_EQ(sc.expect, Expect::Io) << point.name << ": " << e.what();
        } catch (const InjectedFaultError& e) {
            EXPECT_EQ(sc.expect, Expect::Injected) << point.name << ": " << e.what();
        }
        // No failure path may leave a stale temporary behind.
        EXPECT_FALSE(exists(ckpt + ".tmp"))
            << "fail point '" << point.name << "' littered " << ckpt << ".tmp";
    }
    std::remove(ckpt.c_str());
    std::remove((ckpt + ".prev").c_str());
}

TEST_F(FaultInjectionTest, InjectedIoErrorsCarryErrnoDetail) {
    const std::string ckpt = tempPath("fault_errno.mpck");
    failpoint::configure("checkpoint.fsync=once:errno=ENOSPC");
    try {
        runMcmcWithCheckpoint(ckpt);
        FAIL() << "injected ENOSPC did not surface";
    } catch (const CheckpointError& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("No space left"), std::string::npos)
            << "strerror detail missing: " << what;
        EXPECT_NE(what.find("28"), std::string::npos) << "errno number missing: " << what;
    }
    std::remove(ckpt.c_str());
    std::remove((ckpt + ".prev").c_str());
}

TEST_F(FaultInjectionTest, ErrorActionRaisesInjectedFaultAtNumericSites) {
    failpoint::configure("mcmc.logpost=once");  // default action: error
    MpcgsOptions opts;
    opts.theta0 = 1.0;
    opts.emIterations = 1;
    opts.samplesPerIteration = 100;
    opts.strategy = Strategy::SerialMh;
    opts.seed = 7;
    EXPECT_THROW(estimateTheta(smallAlignment(), opts), InjectedFaultError);
}

TEST_F(FaultInjectionTest, NumericFaultDumpsDiagnosticState) {
    const std::string dump = ::testing::TempDir() + "mpcgs_numeric_fault_mcmc.logpost.txt";
    std::remove(dump.c_str());
    failpoint::configure("mcmc.logpost=once:nan");
    MpcgsOptions opts;
    opts.theta0 = 1.0;
    opts.emIterations = 1;
    opts.samplesPerIteration = 100;
    opts.strategy = Strategy::SerialMh;
    opts.seed = 7;
    try {
        estimateTheta(smallAlignment(), opts);
        FAIL() << "poisoned log-posterior did not raise";
    } catch (const NumericError& e) {
        // The error names the dump; the dump names the state.
        EXPECT_NE(std::string(e.what()).find("mcmc.logpost"), std::string::npos);
        ASSERT_TRUE(std::ifstream(dump).good()) << "diagnostic dump missing: " << dump;
        std::ifstream in(dump);
        std::string contents((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
        EXPECT_NE(contents.find("theta"), std::string::npos);
        EXPECT_NE(contents.find("seed"), std::string::npos);
        EXPECT_NE(contents.find("genealogy"), std::string::npos);
    }
    std::remove(dump.c_str());
}

}  // namespace
}  // namespace mpcgs
