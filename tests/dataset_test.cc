// Multi-locus Dataset: file loading (format sniffing), manifest parsing,
// and validation.
#include "seq/dataset.h"

#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "seq/phylip.h"
#include "util/error.h"

namespace mpcgs {
namespace {

std::string tempPath(const std::string& name) {
    return ::testing::TempDir() + "/" + name;
}

Alignment tinyAlignment(const std::string& a, const std::string& b) {
    return Alignment({Sequence::fromString("tip_a", a), Sequence::fromString("tip_b", b)});
}

void writeText(const std::string& path, const std::string& text) {
    std::ofstream f(path);
    f << text;
}

TEST(DatasetTest, SingleWrapsOneAlignment) {
    const Dataset ds = Dataset::single(tinyAlignment("ACGT", "ACGA"), "myLocus");
    EXPECT_EQ(ds.locusCount(), 1u);
    EXPECT_EQ(ds.locus(0).name, "myLocus");
    EXPECT_DOUBLE_EQ(ds.locus(0).mutationScale, 1.0);
    EXPECT_EQ(ds.totalSites(), 4u);
    EXPECT_NO_THROW(ds.validate());
}

TEST(DatasetTest, FromFilesSniffsFormatsByExtension) {
    const std::string phy = tempPath("locusA.phy");
    writePhylipFile(phy, tinyAlignment("ACGTACGT", "ACGAACGA"));

    const std::string fa = tempPath("locusB.fasta");
    writeText(fa, ">s1\nACGTAC\n>s2\nACGTAA\n");

    const std::string nex = tempPath("locusC.nex");
    writeText(nex,
              "#NEXUS\nBEGIN DATA;\nDIMENSIONS NTAX=2 NCHAR=6;\n"
              "FORMAT DATATYPE=DNA;\nMATRIX\nn1 ACGTAC\nn2 ACGTAG\n;\nEND;\n");

    const Dataset ds = Dataset::fromFiles({phy, fa, nex});
    ASSERT_EQ(ds.locusCount(), 3u);
    EXPECT_EQ(ds.locus(0).name, "locusA");
    EXPECT_EQ(ds.locus(1).name, "locusB");
    EXPECT_EQ(ds.locus(2).name, "locusC");
    EXPECT_EQ(ds.locus(0).alignment.length(), 8u);
    EXPECT_EQ(ds.locus(1).alignment.length(), 6u);
    EXPECT_EQ(ds.locus(2).alignment.length(), 6u);
}

TEST(DatasetTest, FromFilesDeduplicatesCollidingStems) {
    const std::string dirA = tempPath("dupA");
    const std::string dirB = tempPath("dupB");
    std::filesystem::create_directories(dirA);
    std::filesystem::create_directories(dirB);
    writePhylipFile(dirA + "/same.phy", tinyAlignment("ACGT", "ACGA"));
    writePhylipFile(dirB + "/same.phy", tinyAlignment("TTTT", "TTTA"));

    const Dataset ds = Dataset::fromFiles({dirA + "/same.phy", dirB + "/same.phy"});
    ASSERT_EQ(ds.locusCount(), 2u);
    EXPECT_EQ(ds.locus(0).name, "same");
    EXPECT_EQ(ds.locus(1).name, "same.2");
}

TEST(DatasetTest, ManifestParsesNamesRatesAndComments) {
    const std::string phy1 = tempPath("m1.phy");
    const std::string phy2 = tempPath("m2.phy");
    writePhylipFile(phy1, tinyAlignment("ACGTACGT", "ACGAACGA"));
    writePhylipFile(phy2, tinyAlignment("ACGTAC", "ACGTAA"));

    const std::string manifest = tempPath("loci.txt");
    writeText(manifest,
              "# two-locus dataset\n"
              "m1.phy name=mito rate=2.5\n"
              "\n"
              "m2.phy   # default name, default rate\n");

    const Dataset ds = Dataset::fromManifest(manifest);
    ASSERT_EQ(ds.locusCount(), 2u);
    EXPECT_EQ(ds.locus(0).name, "mito");
    EXPECT_DOUBLE_EQ(ds.locus(0).mutationScale, 2.5);
    EXPECT_EQ(ds.locus(1).name, "m2");
    EXPECT_DOUBLE_EQ(ds.locus(1).mutationScale, 1.0);
    // Relative manifest paths resolve against the manifest's directory.
    EXPECT_EQ(ds.locus(0).alignment.length(), 8u);
}

TEST(DatasetTest, ManifestErrorsAreClear) {
    const std::string missing = tempPath("nomanifest.txt");
    EXPECT_THROW(Dataset::fromManifest(missing), ConfigError);

    const std::string empty = tempPath("empty.txt");
    writeText(empty, "# nothing but comments\n\n");
    EXPECT_THROW(Dataset::fromManifest(empty), ConfigError);

    const std::string phy = tempPath("ok.phy");
    writePhylipFile(phy, tinyAlignment("ACGT", "ACGA"));

    const std::string badRate = tempPath("badrate.txt");
    writeText(badRate, "ok.phy rate=fast\n");
    EXPECT_THROW(Dataset::fromManifest(badRate), ConfigError);

    const std::string badKey = tempPath("badkey.txt");
    writeText(badKey, "ok.phy color=blue\n");
    EXPECT_THROW(Dataset::fromManifest(badKey), ConfigError);

    const std::string bareToken = tempPath("baretoken.txt");
    writeText(bareToken, "ok.phy justaname\n");
    EXPECT_THROW(Dataset::fromManifest(bareToken), ConfigError);

    // Explicit duplicate name= is a mistake, not a dedupe opportunity.
    const std::string dupName = tempPath("dupname.txt");
    writeText(dupName, "ok.phy name=mito\nok.phy name=mito\n");
    EXPECT_THROW(Dataset::fromManifest(dupName), ConfigError);

    // ...while colliding derived stems still dedupe by suffixing.
    const std::string dupStem = tempPath("dupstem.txt");
    writeText(dupStem, "ok.phy\nok.phy\n");
    const Dataset ds = Dataset::fromManifest(dupStem);
    EXPECT_EQ(ds.locus(1).name, "ok.2");
}

TEST(DatasetTest, ValidationRejectsBadLoci) {
    EXPECT_THROW(Dataset().validate(), ConfigError);

    Dataset oneSeq;
    oneSeq.add(Locus{"solo", Alignment({Sequence::fromString("only", "ACGT")}), 1.0});
    EXPECT_THROW(oneSeq.validate(), ConfigError);

    Dataset badScale;
    badScale.add(Locus{"neg", tinyAlignment("ACGT", "ACGA"), -1.0});
    EXPECT_THROW(badScale.validate(), ConfigError);

    Dataset dup;
    dup.add(Locus{"x", tinyAlignment("ACGT", "ACGA"), 1.0});
    dup.add(Locus{"x", tinyAlignment("TTTT", "TTTA"), 1.0});
    EXPECT_THROW(dup.validate(), ConfigError);
}

}  // namespace
}  // namespace mpcgs
