#include "coalescent/growth.h"

#include <cmath>

#include <gtest/gtest.h>

#include "coalescent/prior.h"
#include "coalescent/simulator.h"
#include "core/growth_estimator.h"
#include "core/posterior.h"
#include "rng/mt19937.h"
#include "seq/seqgen.h"
#include "seq/subst_model.h"
#include "util/error.h"
#include "util/stats.h"

namespace mpcgs {
namespace {

std::vector<CoalInterval> sampleIntervals() {
    return {{0.0, 0.1, 4}, {0.1, 0.35, 3}, {0.35, 1.2, 2}};
}

TEST(GrowthPrior, ZeroGrowthEqualsConstantSizePrior) {
    const auto ivs = sampleIntervals();
    for (const double theta : {0.3, 1.0, 4.0}) {
        EXPECT_NEAR(logGrowthCoalescentPrior(ivs, {theta, 0.0}),
                    logCoalescentPrior(ivs, theta), 1e-9);
    }
}

TEST(GrowthPrior, TinyGrowthIsContinuous) {
    const auto ivs = sampleIntervals();
    const double atZero = logGrowthCoalescentPrior(ivs, {1.0, 0.0});
    const double nearZero = logGrowthCoalescentPrior(ivs, {1.0, 1e-9});
    EXPECT_NEAR(atZero, nearZero, 1e-6);
}

TEST(GrowthPrior, HandComputedSingleInterval) {
    // One pair coalescing at time b under growth g:
    // log p = log(2/theta) + g b - 2 (e^{g b} - 1) / (g theta).
    const std::vector<CoalInterval> ivs{{0.0, 0.5, 2}};
    const double theta = 1.5, g = 2.0, b = 0.5;
    const double expect =
        std::log(2.0 / theta) + g * b - 2.0 * (std::exp(g * b) - 1.0) / (g * theta);
    EXPECT_NEAR(logGrowthCoalescentPrior(ivs, {theta, g}), expect, 1e-12);
}

TEST(GrowthPrior, GradientMatchesNumeric) {
    const auto ivs = sampleIntervals();
    for (const GrowthParams p : {GrowthParams{0.7, 0.0}, GrowthParams{1.3, 1.5},
                                 GrowthParams{2.0, 5.0}, GrowthParams{0.5, -0.8}}) {
        const GrowthGradient grad = growthPriorGradient(ivs, p);
        const double hT = 1e-6 * p.theta;
        const double numT = (logGrowthCoalescentPrior(ivs, {p.theta + hT, p.growth}) -
                             logGrowthCoalescentPrior(ivs, {p.theta - hT, p.growth})) /
                            (2 * hT);
        const double hG = 1e-6;
        const double numG = (logGrowthCoalescentPrior(ivs, {p.theta, p.growth + hG}) -
                             logGrowthCoalescentPrior(ivs, {p.theta, p.growth - hG})) /
                            (2 * hG);
        EXPECT_NEAR(grad.dTheta, numT, 1e-4 * (1.0 + std::fabs(numT)));
        EXPECT_NEAR(grad.dGrowth, numG, 1e-4 * (1.0 + std::fabs(numG)));
    }
}

TEST(GrowthSimulator, ZeroGrowthMatchesConstantSizeMoments) {
    Mt19937 rng(61);
    const double theta = 1.0;
    RunningStats growth0, constant;
    for (int r = 0; r < 20000; ++r) {
        growth0.add(simulateGrowthCoalescent(5, {theta, 0.0}, rng).tmrca());
        constant.add(simulateCoalescent(5, theta, rng).tmrca());
    }
    EXPECT_NEAR(growth0.mean(), constant.mean(), 0.03);
}

TEST(GrowthSimulator, GrowthShortensTrees) {
    // Growing populations (small in the past) coalesce faster.
    Mt19937 rng(62);
    RunningStats flat, growing;
    for (int r = 0; r < 8000; ++r) {
        flat.add(simulateGrowthCoalescent(6, {1.0, 0.0}, rng).tmrca());
        growing.add(simulateGrowthCoalescent(6, {1.0, 5.0}, rng).tmrca());
    }
    EXPECT_LT(growing.mean(), flat.mean());
}

TEST(GrowthSimulator, TreesAreValid) {
    Mt19937 rng(63);
    for (int r = 0; r < 50; ++r) {
        const Genealogy g = simulateGrowthCoalescent(8, {0.5, 3.0}, rng);
        EXPECT_NO_THROW(g.validate());
        EXPECT_EQ(g.tipCount(), 8);
    }
}

TEST(GrowthSimulator, ConsistentWithDensity) {
    // Average log-density of simulated trees is higher at the generating
    // parameters than at wrong ones (a generator/density consistency probe).
    Mt19937 rng(64);
    const GrowthParams truth{1.0, 4.0};
    RunningStats atTruth, wrongGrowth, wrongTheta;
    for (int r = 0; r < 4000; ++r) {
        const Genealogy g = simulateGrowthCoalescent(6, truth, rng);
        const auto ivs = g.intervals();
        atTruth.add(logGrowthCoalescentPrior(ivs, truth));
        wrongGrowth.add(logGrowthCoalescentPrior(ivs, {1.0, 0.0}));
        wrongTheta.add(logGrowthCoalescentPrior(ivs, {8.0, 4.0}));
    }
    EXPECT_GT(atTruth.mean(), wrongGrowth.mean());
    EXPECT_GT(atTruth.mean(), wrongTheta.mean());
}

TEST(GrowthSimulator, RejectsBadArguments) {
    Mt19937 rng(65);
    EXPECT_THROW(simulateGrowthCoalescent(1, {1.0, 0.0}, rng), ConfigError);
    EXPECT_THROW(simulateGrowthCoalescent(4, {0.0, 0.0}, rng), ConfigError);
    EXPECT_THROW(simulateGrowthCoalescent(4, {1.0, -1.0}, rng), ConfigError);
}

TEST(GrowthRelativeLikelihoodTest, DrivingPointIsZero) {
    Mt19937 rng(66);
    std::vector<std::vector<CoalInterval>> samples;
    for (int r = 0; r < 200; ++r)
        samples.push_back(simulateGrowthCoalescent(5, {1.0, 2.0}, rng).intervals());
    const GrowthParams driving{1.0, 2.0};
    const GrowthRelativeLikelihood rl(std::move(samples), driving);
    EXPECT_NEAR(rl.logL(driving), 0.0, 1e-12);
}

TEST(GrowthRelativeLikelihoodTest, ReducesToThetaOnlyCurveAtZeroGrowth) {
    Mt19937 rng(67);
    std::vector<std::vector<CoalInterval>> samples;
    for (int r = 0; r < 300; ++r)
        samples.push_back(simulateCoalescent(5, 1.0, rng).intervals());
    const GrowthRelativeLikelihood rl(samples, {1.0, 0.0});
    // Against the constant-size RelativeLikelihood over the same samples.
    std::vector<IntervalSummary> summaries;
    for (const auto& ivs : samples) summaries.push_back(IntervalSummary::fromIntervals(ivs));
    const RelativeLikelihood flat(summaries, 1.0);
    for (const double theta : {0.4, 1.0, 2.5})
        EXPECT_NEAR(rl.logL({theta, 0.0}), flat.logL(theta), 1e-9);
}

TEST(GrowthMle, RecoversConcentratedSurfacePeak) {
    // Posterior-like (concentrated) sample set: one genealogy at a few
    // nearby scales. The surface is then a smooth unimodal function of
    // (theta, g), and coordinate ascent must match a reference grid scan.
    // (Prior samples driven at the truth would give a flat-in-expectation
    // Eq. 26 surface whose empirical maximum is pure noise.)
    Mt19937 rng(68);
    const GrowthParams truth{1.0, 3.0};
    const Genealogy base = simulateGrowthCoalescent(8, truth, rng);
    std::vector<std::vector<CoalInterval>> samples;
    for (int r = 0; r < 40; ++r) {
        Genealogy jittered = base;
        jittered.scaleTimes(0.96 + 0.002 * r);
        samples.push_back(jittered.intervals());
    }
    const GrowthRelativeLikelihood rl(std::move(samples), truth);
    const GrowthMleResult mle = maximizeGrowthParams(rl, {0.3, 0.0}, 0.0, 12.0);
    double gridBest = -1e300;
    for (double lt = -1.5; lt <= 1.5; lt += 0.05)
        for (double g = 0.0; g <= 12.0; g += 0.25)
            gridBest = std::max(gridBest, rl.logL({std::exp(lt), g}));
    EXPECT_GE(mle.logL, gridBest - 0.05);
}

TEST(GrowthEstimation, EndToEndRecoversSaneParameters) {
    // Full pipeline: growing population, joint estimate. Growth is hard to
    // pin down from one locus, so the criterion is coarse: growth detected
    // (g-hat above zero) and theta within an order of magnitude.
    Mt19937 rng(69);
    const GrowthParams truth{1.0, 6.0};
    const Genealogy tree = simulateGrowthCoalescent(10, truth, rng);
    const auto model = makeF84(2.0, kUniformFreqs);
    const Alignment data = simulateSequences(tree, *model, {500, 1.0}, rng);

    GrowthEstimateOptions opts;
    opts.driving = {0.5, 0.0};
    opts.emIterations = 4;
    opts.samplesPerIteration = 2500;
    opts.seed = 70;
    opts.growthHi = 30.0;
    ThreadPool pool(4);
    const GrowthEstimateResult res = estimateThetaAndGrowth(data, opts, &pool);
    EXPECT_GT(res.params.theta, 0.05);
    EXPECT_LT(res.params.theta, 20.0);
    EXPECT_GE(res.params.growth, 0.0);
    EXPECT_EQ(res.history.size(), 4u);
}

}  // namespace
}  // namespace mpcgs
