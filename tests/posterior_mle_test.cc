#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "coalescent/simulator.h"
#include "core/mle.h"
#include "core/posterior.h"
#include "rng/mt19937.h"
#include "util/error.h"

namespace mpcgs {
namespace {

std::vector<IntervalSummary> simulatedSummaries(int n, double theta, int reps, unsigned seed) {
    Mt19937 rng(seed);
    std::vector<IntervalSummary> out;
    out.reserve(static_cast<std::size_t>(reps));
    for (int r = 0; r < reps; ++r)
        out.push_back(IntervalSummary::fromGenealogy(simulateCoalescent(n, theta, rng)));
    return out;
}

TEST(RelativeLikelihood, LogLAtDrivingValueIsZero) {
    // Eq. 26: every term is P(G|theta0)/P(G|theta0) = 1, so L(theta0) = 1.
    const auto samples = simulatedSummaries(6, 1.0, 500, 1);
    const RelativeLikelihood rl(samples, 1.0);
    EXPECT_NEAR(rl.logL(1.0), 0.0, 1e-12);
}

TEST(RelativeLikelihood, MatchesDirectEvaluation) {
    Mt19937 rng(2);
    const Genealogy g = simulateCoalescent(5, 1.0, rng);
    const auto ivs = g.intervals();
    const std::vector<IntervalSummary> samples{IntervalSummary::fromIntervals(ivs)};
    const double theta0 = 0.7;
    const RelativeLikelihood rl(samples, theta0);
    for (const double theta : {0.3, 0.7, 1.5, 4.0}) {
        const double direct = logCoalescentPrior(ivs, theta) - logCoalescentPrior(ivs, theta0);
        EXPECT_NEAR(rl.logL(theta), direct, 1e-10);
    }
}

TEST(RelativeLikelihood, ParallelMatchesSerial) {
    const auto samples = simulatedSummaries(8, 2.0, 3000, 3);
    const RelativeLikelihood rl(samples, 1.0);
    ThreadPool pool(6);
    for (const double theta : {0.5, 1.0, 2.0, 3.0})
        EXPECT_NEAR(rl.logL(theta), rl.logL(theta, &pool), 1e-10);
}

/// Posterior-like sample sets: interval sums concentrated around a target
/// value, as produced by a data-driven chain (prior samples would give a
/// flat-in-expectation Eq. 26 curve with heavy-tailed noise).
std::vector<IntervalSummary> tightSummaries(int events, double meanW, double spread, int reps,
                                            unsigned seed) {
    Mt19937 rng(seed);
    std::vector<IntervalSummary> out;
    out.reserve(static_cast<std::size_t>(reps));
    for (int r = 0; r < reps; ++r)
        out.push_back(IntervalSummary{meanW + spread * (rng.uniform01() - 0.5), events});
    return out;
}

TEST(RelativeLikelihood, PeaksNearPosteriorConcentration) {
    // With interval sums concentrated around w, the Eq. 26 curve peaks near
    // w / (n-1), the common per-sample maximizer.
    const int events = 9;
    const double meanW = 18.0;  // implies theta_hat = 2.0
    const auto samples = tightSummaries(events, meanW, 2.0, 2000, 4);
    const RelativeLikelihood rl(samples, 1.0);
    const auto curve = rl.curve(0.2, 20.0, 121);
    double best = -1e300, bestTheta = 0.0;
    for (const auto& [theta, ll] : curve) {
        if (ll > best) {
            best = ll;
            bestTheta = theta;
        }
    }
    EXPECT_NEAR(bestTheta, meanW / events, 0.15);
}

TEST(RelativeLikelihood, SingleSampleAnalyticMaximum) {
    // With one sample the maximizer is the single-tree MLE.
    Mt19937 rng(5);
    const Genealogy g = simulateCoalescent(6, 1.0, rng);
    const auto ivs = g.intervals();
    const std::vector<IntervalSummary> samples{IntervalSummary::fromIntervals(ivs)};
    const RelativeLikelihood rl(samples, 0.5);
    const MleResult res = maximizeTheta(rl, 0.5);
    EXPECT_NEAR(res.theta, singleTreeThetaMle(ivs), 1e-3);
}

TEST(RelativeLikelihood, CurveGridValidation) {
    const auto samples = simulatedSummaries(4, 1.0, 10, 6);
    const RelativeLikelihood rl(samples, 1.0);
    EXPECT_THROW(rl.curve(0.0, 1.0, 10), InvariantError);
    EXPECT_THROW(rl.curve(1.0, 0.5, 10), InvariantError);
    EXPECT_THROW(rl.curve(0.5, 1.0, 1), InvariantError);
    EXPECT_THROW(rl.logL(-1.0), InvariantError);
}

TEST(RelativeLikelihood, ConstructorValidation) {
    EXPECT_THROW(RelativeLikelihood({}, 1.0), InvariantError);
    const auto samples = simulatedSummaries(4, 1.0, 10, 7);
    EXPECT_THROW(RelativeLikelihood(samples, 0.0), ConfigError);
}

TEST(Mle, GradientAscentFindsKnownMaximum) {
    const auto samples = tightSummaries(7, 10.5, 1.5, 2000, 8);  // peak near 1.5
    const RelativeLikelihood rl(samples, 1.5);
    const MleResult grad = maximizeThetaGradient(rl, 0.3);
    EXPECT_TRUE(grad.converged);
    // Compare against a fine grid search.
    const auto curve = rl.curve(0.1, 15.0, 600);
    double gridBest = -1e300, gridTheta = 0.0;
    for (const auto& [theta, ll] : curve)
        if (ll > gridBest) {
            gridBest = ll;
            gridTheta = theta;
        }
    EXPECT_NEAR(grad.theta, gridTheta, 0.05 * gridTheta);
    EXPECT_GE(grad.logL, gridBest - 1e-6);
}

TEST(Mle, GoldenSectionAgreesWithGradient) {
    const auto samples = tightSummaries(7, 5.6, 1.0, 2000, 9);  // peak near 0.8
    const RelativeLikelihood rl(samples, 0.8);
    const MleResult grad = maximizeThetaGradient(rl, 2.0);
    const MleResult gold = maximizeThetaGolden(rl, 0.01, 50.0);
    EXPECT_NEAR(grad.theta, gold.theta, 0.02 * gold.theta);
}

TEST(Mle, StartingFarBelowStillConverges) {
    // The Fig 5 scenario: driving value 0.01 while the samples support
    // theta near 1.0.
    const auto samples = tightSummaries(9, 9.0, 1.0, 2000, 10);
    const RelativeLikelihood rl(samples, 0.01);
    const MleResult res = maximizeTheta(rl, 0.01);
    EXPECT_NEAR(res.theta, 1.0, 0.1);
}

TEST(Mle, RejectsNonPositiveStart) {
    const auto samples = simulatedSummaries(4, 1.0, 10, 11);
    const RelativeLikelihood rl(samples, 1.0);
    EXPECT_THROW(maximizeThetaGradient(rl, 0.0), InvariantError);
    EXPECT_THROW(maximizeThetaGolden(rl, -1.0, 1.0), InvariantError);
}

}  // namespace
}  // namespace mpcgs
