// The full §6.1 evaluation pipeline for one population:
//
//   mscoal-style tree -> seq-gen-style F84 sequences -> PHYLIP round-trip
//   -> theta estimation with BOTH samplers -> comparison table.
//
//   $ ./examples/theta_pipeline [--theta T] [--seqs n] [--length L] [--reps R]
#include <cstdio>
#include <iostream>
#include <vector>

#include "coalescent/simulator.h"
#include "core/driver.h"
#include "rng/mt19937.h"
#include "seq/phylip.h"
#include "seq/seqgen.h"
#include "seq/subst_model.h"
#include "util/options.h"
#include "util/stats.h"
#include "util/table.h"

int main(int argc, char** argv) {
    using namespace mpcgs;
    const Options cli = Options::parse(argc, argv);
    const double trueTheta = cli.getDouble("theta", 1.0);
    const int nSeq = static_cast<int>(cli.getInt("seqs", 12));
    const std::size_t length = static_cast<std::size_t>(cli.getInt("length", 200));
    const int reps = static_cast<int>(cli.getInt("reps", 3));

    ThreadPool pool;
    std::vector<double> gmhEst, mhEst;

    for (int rep = 0; rep < reps; ++rep) {
        // Simulate and round-trip through PHYLIP, exactly as the paper's
        // tooling does.
        Mt19937 rng(1000 + static_cast<unsigned>(rep));
        const Genealogy truth = simulateCoalescent(nSeq, trueTheta, rng);
        const auto gen = makeF84(2.0, kUniformFreqs);
        const Alignment raw = simulateSequences(truth, *gen, {length, 1.0}, rng);
        const Alignment data = readPhylipString(writePhylipString(raw));

        MpcgsOptions opts;
        opts.theta0 = trueTheta / 4.0;  // start deliberately off
        opts.emIterations = 4;
        opts.samplesPerIteration = 4000;
        opts.seed = 500 + static_cast<unsigned>(rep);

        opts.strategy = Strategy::Gmh;
        gmhEst.push_back(estimateTheta(data, opts, &pool).theta);
        opts.strategy = Strategy::SerialMh;
        mhEst.push_back(estimateTheta(data, opts).theta);
        std::printf("replicate %d: gmh %.3f, serial mh %.3f\n", rep + 1, gmhEst.back(),
                    mhEst.back());
    }

    Table table({"estimator", "mean theta-hat", "stdev", "true theta"});
    table.addRow({"GMH (mpcgs)", Table::num(mean(gmhEst)), Table::num(stdev(gmhEst)),
                  Table::num(trueTheta)});
    table.addRow({"serial MH (LAMARC role)", Table::num(mean(mhEst)), Table::num(stdev(mhEst)),
                  Table::num(trueTheta)});
    std::cout << '\n';
    table.print(std::cout);
    return 0;
}
