// Study the model mismatch the paper tolerates (§6.1: data generated under
// seq-gen's F84 but inference under Eq. 20's F81): estimate theta with each
// available inference model against F84-generated data.
//
//   $ ./examples/model_comparison [--theta T] [--kappa K]
#include <cstdio>
#include <iostream>

#include "coalescent/simulator.h"
#include "core/driver.h"
#include "core/smc_estimator.h"
#include "rng/mt19937.h"
#include "seq/seqgen.h"
#include "seq/subst_model.h"
#include "util/options.h"
#include "util/table.h"

int main(int argc, char** argv) {
    using namespace mpcgs;
    const Options cli = Options::parse(argc, argv);
    const double trueTheta = cli.getDouble("theta", 1.0);
    const double kappa = cli.getDouble("kappa", 2.0);

    // Skewed base frequencies make the model differences visible.
    const BaseFreqs pi{0.35, 0.15, 0.2, 0.3};
    Mt19937 rng(77);
    const Genealogy truth = simulateCoalescent(12, trueTheta, rng);
    const auto generator = makeF84(kappa, pi);
    const Alignment data = simulateSequences(truth, *generator, {600, 1.0}, rng);

    ThreadPool pool;
    // theta-hat (MCMC) is the EM maximizer of the sampled relative
    // likelihood; theta-hat (SMC) maximizes the particle-filter marginal
    // likelihood of the SAME data under the SAME model, plus its pooled
    // log marginal likelihood log Zhat at the maximum — the quantity model
    // comparison actually wants (a Bayes factor is a logZ difference).
    Table table({"inference model", "theta-hat (MCMC)", "theta-hat (SMC)", "logZ (SMC)",
                 "note"});
    for (const char* name : {"F81", "JC69", "HKY85", "F84"}) {
        MpcgsOptions opts;
        opts.theta0 = 0.5;
        opts.emIterations = 4;
        opts.samplesPerIteration = 4000;
        opts.substModel = name;
        opts.seed = 3;
        const MpcgsResult res = estimateTheta(data, opts, &pool);

        SmcEstimateOptions smcOpts;
        smcOpts.theta0 = 0.5;
        smcOpts.smc.particles = 1024;
        smcOpts.substModel = name;
        smcOpts.seed = 3;
        const SmcEstimateResult smc =
            estimateThetaSmc(Dataset::single(data), smcOpts, &pool);

        std::string note;
        if (std::string(name) == "F81") note = "paper's Eq. 20 kernel";
        if (std::string(name) == "F84") note = "matches the generator";
        table.addRow({name, Table::num(res.theta), Table::num(smc.theta),
                      Table::num(smc.logZAtMax, 2), note});
    }
    std::printf("data generated under F84 (kappa=%.1f), true theta = %.2f\n\n", kappa,
                trueTheta);
    table.print(std::cout);
    std::printf("\nAll models recover theta to the same order; the residual spread is\n"
                "the mismatch the thesis notes between its F81 kernel and seq-gen's F84.\n"
                "The MCMC and SMC columns cross-validate each other, and the logZ\n"
                "column ranks the models directly: the highest marginal likelihood\n"
                "should belong to the generator's own family.\n");
    return 0;
}
