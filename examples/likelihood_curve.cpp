// Reproduce the shape of Fig 5: a relative likelihood curve for data with
// true theta = 1.0 sampled under the driving value theta0 = 0.01.
//
//   $ ./examples/likelihood_curve [--out curve.csv]
//
// Prints theta, log L(theta) pairs; the curve should peak near 1.0 and be
// hugely positive there relative to the driving value.
#include <cstdio>
#include <fstream>

#include "coalescent/simulator.h"
#include "core/genealogy_problem.h"
#include "core/driver.h"
#include "core/posterior.h"
#include "mcmc/gmh.h"
#include "rng/mt19937.h"
#include "seq/seqgen.h"
#include "seq/subst_model.h"
#include "util/options.h"

int main(int argc, char** argv) {
    using namespace mpcgs;
    const Options opts = Options::parse(argc, argv);

    // Data with true theta = 1.0 (the Fig 5 setup).
    Mt19937 rng(5);
    const Genealogy truth = simulateCoalescent(10, 1.0, rng);
    const auto generator = makeF84(2.0, kUniformFreqs);
    const Alignment data = simulateSequences(truth, *generator, {500, 1.0}, rng);

    // Drive the sampler at a mildly wrong value so a single E-step already
    // explores truth-scale genealogies. (The paper's Fig 5 setting of
    // theta0 = 0.01 needs the full EM ladder to re-center — see
    // bench/likelihood_curve_fig5 for that reproduction.)
    const double theta0 = 0.5;
    const F81Model model(data.baseFrequencies());
    const DataLikelihood lik(data, model);
    const GmhGenealogyProblem problem(lik, theta0);

    GmhOptions gopt;
    gopt.numProposals = 32;
    gopt.samplesPerIteration = 8;
    gopt.seed = 55;
    ThreadPool pool;
    GmhSampler<GmhGenealogyProblem> sampler(problem, gopt, &pool);

    std::vector<IntervalSummary> summaries;
    sampler.run(initialGenealogy(data, theta0), 200, 1500,
                [&](const Genealogy& g) { summaries.push_back(IntervalSummary::fromGenealogy(g)); });

    const RelativeLikelihood rl(summaries, theta0);
    const auto curve = rl.curve(theta0 / 2, 10.0, 60, &pool);

    std::printf("# theta, logL(theta)  [driving theta0 = %.3f]\n", theta0);
    double bestTheta = 0, best = -1e300;
    for (const auto& [theta, ll] : curve) {
        std::printf("%10.5f, %12.5f\n", theta, ll);
        if (ll > best) {
            best = ll;
            bestTheta = theta;
        }
    }
    std::printf("# curve peak at theta = %.4f (true theta = 1.0)\n", bestTheta);

    if (const auto out = opts.get("out")) {
        std::ofstream f(*out);
        f << "theta,logL\n";
        for (const auto& [theta, ll] : curve) f << theta << ',' << ll << '\n';
        std::printf("# wrote %s\n", out->c_str());
    }
    return 0;
}
