// Joint (theta, growth-rate) estimation — the thesis's §7 future-work
// extension. Simulates a population that has been growing exponentially,
// then estimates both parameters with the multi-proposal sampler. No new
// proposal kernel is needed: the pi/q GMH weights stay exact when only the
// target posterior changes (see DESIGN.md §1).
//
//   $ ./examples/growth_estimation [--theta T] [--growth G] [--length L]
#include <cstdio>

#include "coalescent/growth.h"
#include "core/growth_estimator.h"
#include "rng/mt19937.h"
#include "seq/seqgen.h"
#include "seq/subst_model.h"
#include "util/options.h"

int main(int argc, char** argv) {
    using namespace mpcgs;
    const Options cli = Options::parse(argc, argv);
    const GrowthParams truth{cli.getDouble("theta", 1.0), cli.getDouble("growth", 6.0)};
    const std::size_t length = static_cast<std::size_t>(cli.getInt("length", 600));

    Mt19937 rng(2023);
    const Genealogy tree = simulateGrowthCoalescent(12, truth, rng);
    const auto model = makeF84(2.0, kUniformFreqs);
    const Alignment data = simulateSequences(tree, *model, {length, 1.0}, rng);
    std::printf("simulated %zu sequences x %zu bp under theta=%.2f, growth=%.2f\n",
                data.sequenceCount(), data.length(), truth.theta, truth.growth);
    std::printf("tree height %.4f (a flat population of the same theta averages %.4f)\n\n",
                tree.tmrca(), truth.theta * (1.0 - 1.0 / 12.0));

    GrowthEstimateOptions opts;
    opts.driving = {0.5, 0.0};  // start flat and wrong
    opts.emIterations = 5;
    opts.samplesPerIteration = 5000;
    opts.growthHi = 40.0;

    ThreadPool pool;
    const GrowthEstimateResult res = estimateThetaAndGrowth(data, opts, &pool);

    for (std::size_t i = 0; i < res.history.size(); ++i)
        std::printf("  EM %zu: driving theta=%.4f growth=%.3f\n", i + 1, res.history[i].theta,
                    res.history[i].growth);
    std::printf("\nestimate: theta=%.4f growth=%.3f (truth: %.2f, %.2f) in %.1fs\n",
                res.params.theta, res.params.growth, truth.theta, truth.growth, res.seconds);
    std::printf("\nSingle-locus growth estimates are famously noisy (Kuhner 2006); the\n"
                "qualitative signal to look for is growth-hat clearly above 0.\n");
    return 0;
}
