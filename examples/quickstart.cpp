// Quickstart: simulate a small data set and estimate theta with the
// multi-proposal sampler — the library's core loop in ~40 lines.
//
//   $ ./examples/quickstart
//
// Pipeline (paper §6.1): coalescent tree (ms substitute) -> sequences under
// F84 (seq-gen substitute) -> GMH-based EM estimation of theta.
#include <cstdio>

#include "coalescent/moment_estimators.h"
#include "coalescent/simulator.h"
#include "core/driver.h"
#include "rng/mt19937.h"
#include "seq/seqgen.h"
#include "seq/subst_model.h"

int main() {
    using namespace mpcgs;

    // 1. Simulate the "unknown truth": a genealogy at theta = 1 and DNA
    //    sequences evolved along it.
    const double trueTheta = 1.0;
    Mt19937 rng(2016);
    const Genealogy truth = simulateCoalescent(/*nTips=*/12, trueTheta, rng);
    const auto generator = makeF84(/*kappa=*/2.0, kUniformFreqs);
    const Alignment data = simulateSequences(truth, *generator, {/*length=*/300, 1.0}, rng);
    std::printf("simulated %zu sequences x %zu bp (true theta = %.2f)\n",
                data.sequenceCount(), data.length(), trueTheta);

    // 2. Estimate theta starting from a deliberately bad driving value.
    MpcgsOptions opts;
    opts.theta0 = 0.05;
    opts.emIterations = 4;
    opts.samplesPerIteration = 4000;
    opts.strategy = Strategy::Gmh;

    ThreadPool pool;  // all hardware threads
    const MpcgsResult result = estimateTheta(data, opts, &pool);

    // 3. Report.
    for (std::size_t i = 0; i < result.history.size(); ++i)
        std::printf("  EM iteration %zu: theta %.4f -> %.4f\n", i + 1,
                    result.history[i].thetaBefore, result.history[i].thetaAfter);
    std::printf("estimated theta = %.4f (truth %.2f) in %.2fs\n", result.theta, trueTheta,
                result.totalSeconds);
    std::printf("moment estimators for comparison: Watterson %.4f, Tajima %.4f\n",
                wattersonTheta(data), tajimaTheta(data));
    return 0;
}
