// Demonstrate the paper's central claim through the unified sampler
// runtime: the GMH sampler scales with parallel width because burn-in work
// parallelizes too, while the multi-chain workaround pays B per chain
// (Eq. 27). Heated (MC^3) sweeps now also run across the pool — every
// strategy goes through the same SamplerRun path, so the sweep below is a
// single loop over strategies.
//
//   $ ./examples/parallel_scaling [--samples N] [--seqs n] [--length L]
//
// Prints a thread sweep (wall time + speedup vs 1 thread) for GMH,
// multi-chain and heated MC^3, next to the serial MH reference, then shows
// convergence-driven stopping ending an E-step before the sample cap.
#include <cstdio>

#include "coalescent/simulator.h"
#include "core/driver.h"
#include "par/thread_pool.h"
#include "rng/mt19937.h"
#include "seq/seqgen.h"
#include "seq/subst_model.h"
#include "util/options.h"
#include "util/table.h"

#include <iostream>

int main(int argc, char** argv) {
    using namespace mpcgs;
    const Options cli = Options::parse(argc, argv);
    const int nSeq = static_cast<int>(cli.getInt("seqs", 12));
    const std::size_t length = static_cast<std::size_t>(cli.getInt("length", 400));
    const std::size_t samples = static_cast<std::size_t>(cli.getInt("samples", 6000));

    Mt19937 rng(99);
    const Genealogy truth = simulateCoalescent(nSeq, 1.0, rng);
    const auto gen = makeF84(2.0, kUniformFreqs);
    const Alignment data = simulateSequences(truth, *gen, {length, 1.0}, rng);

    MpcgsOptions base;
    base.theta0 = 1.0;
    base.emIterations = 1;
    base.samplesPerIteration = samples;
    base.gmhProposals = 48;
    base.gmhSamplesPerSet = 48;  // Alg 1 draws M = N samples per set
    base.seed = 7;

    // Serial MH reference (the LAMARC role).
    MpcgsOptions mh = base;
    mh.strategy = Strategy::SerialMh;
    const double mhTime = estimateTheta(data, mh).samplingSeconds;
    std::printf("serial MH baseline: %.3fs for %zu samples (%d seqs x %zu bp)\n\n", mhTime,
                samples, nSeq, length);

    // One sweep per strategy — identical driver code, only the enum
    // changes. Burn-in parallelizes inside GMH; multi-chain pays B per
    // chain; MC^3 steps its whole ladder concurrently each sweep.
    const std::pair<const char*, Strategy> strategies[] = {
        {"gmh", Strategy::Gmh},
        {"multichain", Strategy::MultiChain},
        {"heated", Strategy::HeatedMh},
    };
    for (const auto& [name, strategy] : strategies) {
        Table table({"threads", "time (s)", "speedup vs serial MH", "scaling vs 1 thread"});
        double oneThread = 0.0;
        for (const unsigned threads : {1u, 2u, 4u, 8u, 16u, hardwareThreads()}) {
            if (threads > hardwareThreads()) continue;
            ThreadPool pool(threads);
            MpcgsOptions opts = base;
            opts.strategy = strategy;
            if (strategy == Strategy::MultiChain) opts.chains = threads;
            const double t = estimateTheta(data, opts, &pool).samplingSeconds;
            if (threads == 1) oneThread = t;
            table.addRow({Table::integer(threads), Table::num(t, 3),
                          Table::num(mhTime / t, 2), Table::num(oneThread / t, 2)});
        }
        std::printf("strategy: %s\n", name);
        table.print(std::cout);
        std::printf("\n");
    }

    // Convergence-driven stopping: instead of a fixed sample budget, end
    // the E-step once cross-chain R-hat and pooled ESS clear their bars.
    MpcgsOptions adaptive = base;
    adaptive.strategy = Strategy::MultiChain;
    adaptive.chains = 4;
    adaptive.samplesPerIteration = samples * 4;  // generous cap
    adaptive.stopRhat = 1.05;
    adaptive.stopEss = 200.0;
    ThreadPool pool(hardwareThreads());
    const MpcgsResult res = estimateTheta(data, adaptive, &pool);
    const auto& h = res.history.front();
    std::printf("convergence-driven stop: %zu of %zu samples used (%s), "
                "R-hat %.4f, pooled ESS %.0f, theta %.4g\n",
                h.samples, adaptive.samplesPerIteration,
                h.stoppedEarly ? "stopped early" : "ran to cap", h.rhat, h.ess, res.theta);

    std::printf("\nGMH makes N=%zu proposals per iteration; each is an independent\n"
                "likelihood evaluation, so the E-step parallelizes without a serial\n"
                "burn-in bottleneck.\n",
                base.gmhProposals);
    return 0;
}
