// Multi-locus scaling: samples/second of the joint-theta pipeline across a
// loci x threads sweep. The loci axis is embarrassingly parallel (each
// locus runs its own chain set inside the lockstep MultiLocusRun rounds),
// so throughput should scale with min(loci, threads) while staying bitwise
// invariant to the thread count. Emits BENCH_multilocus.json (snapshot
// committed under bench/) next to BENCH_mcmc.json. Note: like the other
// thread sweeps, the committed snapshot comes from the single-core dev
// container, where every thread row measures the same serial work — the
// sweep shows real scaling only on multi-core hardware. With L > 1 the
// loci axis claims the pool and the per-locus samplers run serial ticks,
// so single-locus strategy parallelism (GMH fan-out) is traded for
// locus-level parallelism; at L >= threads that trade is strictly better.
//
//   $ ./multilocus_scaling [--samples N] [--seqs n] [--length L] [--paper-scale]
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench/workload.h"
#include "rng/splitmix.h"
#include "seq/dataset.h"
#include "util/build_info.h"
#include "util/table.h"
#include "util/timer.h"

namespace {

struct Row {
    std::size_t loci;
    unsigned threads;
    std::size_t samples;
    double seconds;
    double samplesPerSec;
    double speedupVs1T;
};

}  // namespace

int main(int argc, char** argv) {
    using namespace mpcgs;
    using namespace mpcgs::bench;
    const BenchConfig cfg = BenchConfig::fromArgs(argc, argv);
    const Options cli = Options::parse(argc, argv);
    const int nSeq = static_cast<int>(cli.getInt("seqs", 8));
    const std::size_t length = static_cast<std::size_t>(cli.getInt("length", 200));
    const std::size_t samplesPerLocus =
        static_cast<std::size_t>(cli.getInt("samples", cfg.paperScale ? 8000 : 1500));

    printHeader("multi-locus scaling (samples/sec per loci x threads)");
    const std::size_t maxLoci = 8;
    Dataset all;
    for (std::size_t l = 0; l < maxLoci; ++l)
        all.add(Locus{"locus" + std::to_string(l),
                      makeDataset(nSeq, length, 1.0, static_cast<unsigned>(
                                                         splitMix64At(29, l) & 0x7FFFFFFFu)),
                      1.0});
    std::printf("%d sequences x %zu bp per locus, %zu samples per locus, one EM iteration\n\n",
                nSeq, length, samplesPerLocus);

    std::vector<Row> rows;
    Table table({"loci", "threads", "time (s)", "samples/sec", "speedup"});
    for (const std::size_t loci : {1u, 2u, 4u, 8u}) {
        Dataset subset;
        for (std::size_t l = 0; l < loci; ++l) subset.add(all.locus(l));

        double oneThreadSeconds = 0.0;
        for (const unsigned threads : {1u, 2u, 4u, 8u}) {
            MpcgsOptions opts;
            opts.theta0 = 1.0;
            opts.emIterations = 1;
            opts.samplesPerIteration = samplesPerLocus;
            opts.seed = 23;
            opts.strategy = Strategy::Gmh;
            opts.gmhProposals = 32;
            opts.gmhSamplesPerSet = 32;

            ThreadPool pool(threads);
            const MpcgsResult res = estimateTheta(subset, opts, &pool);
            const std::size_t produced = res.history.front().samples;
            if (threads == 1) oneThreadSeconds = res.samplingSeconds;
            const double rate = static_cast<double>(produced) / res.samplingSeconds;
            const double speedup = oneThreadSeconds / res.samplingSeconds;
            rows.push_back({loci, threads, produced, res.samplingSeconds, rate, speedup});
            table.addRow({Table::integer(loci), Table::integer(threads),
                          Table::num(res.samplingSeconds, 3), Table::num(rate, 0),
                          Table::num(speedup, 2)});
        }
    }
    table.print(std::cout);

    warnIfDirtyProvenance("BENCH_multilocus.json");
    std::ofstream json("BENCH_multilocus.json");
    json << "{\n  \"benchmark\": \"multilocus_scaling\",\n";
    json << "  \"provenance\": " << buildProvenanceJson() << ",\n";
    json << "  \"config\": {\"sequences\": " << nSeq << ", \"length\": " << length
         << ", \"samples_per_locus\": " << samplesPerLocus
         << ", \"strategy\": \"gmh\"},\n  \"results\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row& r = rows[i];
        json << "    {\"loci\": " << r.loci << ", \"threads\": " << r.threads
             << ", \"samples\": " << r.samples << ", \"seconds\": " << r.seconds
             << ", \"samples_per_sec\": " << r.samplesPerSec
             << ", \"speedup_vs_1t\": " << r.speedupVs1T << "}"
             << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    json << "  ]\n}\n";
    std::printf("\nwrote BENCH_multilocus.json (%zu rows)\n", rows.size());
    return 0;
}
