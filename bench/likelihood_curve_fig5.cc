// Experiment E5 — Fig 5: the relative likelihood curve for a population
// with true theta = 1.0 and an initial driving value theta0 = 0.01.
//
// A single E-step driven at 0.01 cannot explore truth-scale genealogies
// (the proposal kernel resimulates from the coalescent prior at the driving
// value, §4.2), which is precisely why the program iterates
// Expectation-Maximization (Fig 11): each iteration re-centers the driving
// value at the previous curve's maximum. This bench runs that ladder and
// prints the first and final curves; the final curve is the Fig 5 picture —
// peaked near the true theta, enormously above L(theta0) = 1.
//
// Shape criterion: final-curve peak within a factor ~2 of theta = 1.0 and
// log L at the peak >> 0.
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/workload.h"
#include "core/genealogy_problem.h"
#include "core/mle.h"
#include "core/posterior.h"
#include "lik/felsenstein.h"
#include "mcmc/gmh.h"

namespace {

using namespace mpcgs;

std::vector<IntervalSummary> sampleAtDrivingValue(const DataLikelihood& lik, double theta,
                                                  Genealogy& state, std::size_t iters,
                                                  std::uint64_t seed, ThreadPool* pool) {
    const GmhGenealogyProblem problem(lik, theta);
    GmhOptions gopt;
    gopt.numProposals = 32;
    gopt.samplesPerIteration = 32;
    gopt.seed = seed;
    GmhSampler<GmhGenealogyProblem> sampler(problem, gopt, pool);
    std::vector<IntervalSummary> out;
    state = sampler.run(std::move(state), iters / 10, iters, [&](const Genealogy& g) {
        out.push_back(IntervalSummary::fromGenealogy(g));
    });
    return out;
}

void printCurve(const std::vector<std::pair<double, double>>& curve, double peakTheta) {
    double best = -1e300;
    for (const auto& [theta, ll] : curve) best = std::max(best, ll);
    for (const auto& [theta, ll] : curve) {
        const int bars =
            std::max(0, static_cast<int>(46.0 + 46.0 * (ll - best) / (std::fabs(best) + 25.0)));
        std::printf("  %8.4f  %12.3f   %s\n", theta, ll, std::string(bars, '#').c_str());
    }
    std::printf("  peak at theta = %.4f\n", peakTheta);
}

}  // namespace

int main(int argc, char** argv) {
    using namespace mpcgs::bench;
    const BenchConfig cfg = BenchConfig::fromArgs(argc, argv);
    const std::size_t itersPerStep = cfg.paperScale ? 4000 : 1200;
    const std::size_t emSteps = 8;

    printHeader("Fig 5: likelihood curve, true theta = 1.0, driving theta0 = 0.01");
    const Alignment data = makeDataset(10, 500, 1.0, 5);
    const F81Model model(data.baseFrequencies());
    const DataLikelihood lik(data, model);
    ThreadPool pool(cfg.threads);

    double theta = 0.01;  // the paper's driving value
    Genealogy state = initialGenealogy(data, theta);
    std::vector<std::pair<double, double>> firstCurve, lastCurve;
    double firstPeak = 0.0, lastPeak = 0.0;

    for (std::size_t step = 0; step < emSteps; ++step) {
        auto summaries =
            sampleAtDrivingValue(lik, theta, state, itersPerStep, 55 + step, &pool);
        const RelativeLikelihood rl(std::move(summaries), theta);
        const MleResult mle = maximizeTheta(rl, theta, &pool);
        const auto curve = rl.curve(std::max(theta / 4, 1e-4), std::max(8.0, theta * 8), 33, &pool);
        if (step == 0) {
            firstCurve = curve;
            firstPeak = mle.theta;
        }
        lastCurve = curve;
        lastPeak = mle.theta;
        std::printf("EM step %zu: driving theta %.5f -> MLE %.5f\n", step + 1, theta, mle.theta);
        theta = mle.theta;
    }

    std::printf("\nFirst-iteration curve (driving 0.01 — exploration-limited):\n");
    printCurve(firstCurve, firstPeak);
    std::printf("\nFinal re-centered curve (the Fig 5 picture):\n");
    printCurve(lastCurve, lastPeak);
    std::printf("\nfinal theta estimate = %.4f (true theta = 1.0)\n", theta);
    std::printf("shape criterion: final curve peaks within a factor ~2 of the truth,\n"
                "with log L(peak) >> 0 relative to the driving value, matching Fig 5.\n");
    return 0;
}
