// Experiment E7 — Fig 2: a Markov chain burn-in trace. Start the sampler
// from a deliberately mis-scaled initial genealogy and record the
// log-posterior trace; the transient then stationary behaviour of Fig 2
// should be visible, and the empirical burn-in estimator should flag it.
#include <cstdio>
#include <vector>

#include "bench/workload.h"
#include "core/genealogy_problem.h"
#include "lik/felsenstein.h"
#include "mcmc/diagnostics.h"
#include "mcmc/mh.h"
#include "phylo/upgma.h"

int main(int argc, char** argv) {
    using namespace mpcgs;
    using namespace mpcgs::bench;
    const BenchConfig cfg = BenchConfig::fromArgs(argc, argv);
    const std::size_t steps = cfg.paperScale ? 60000 : 15000;

    printHeader("Fig 2: Markov chain burn-in trace");

    const Alignment data = makeDataset(10, 300, 1.0, 2);
    const F81Model model(data.baseFrequencies());
    const DataLikelihood lik(data, model);
    const double theta = 1.0;
    const MhGenealogyProblem problem(lik, theta);

    // Terrible start: initial tree scaled 100x too tall.
    Genealogy init = initialGenealogy(data, theta);
    init.scaleTimes(100.0);

    MhChain<MhGenealogyProblem> chain(problem, init, 3);
    std::vector<double> trace;
    trace.reserve(steps);
    for (std::size_t i = 0; i < steps; ++i) {
        chain.step();
        trace.push_back(chain.currentLogPosterior());
    }

    // Down-sampled trace rendering.
    const std::size_t buckets = 30;
    std::printf("\n  step        mean log-posterior (window)\n");
    double lo = 1e300, hi = -1e300;
    for (const double v : trace) {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
    }
    for (std::size_t b = 0; b < buckets; ++b) {
        const std::size_t begin = b * steps / buckets;
        const std::size_t end = (b + 1) * steps / buckets;
        double acc = 0.0;
        for (std::size_t i = begin; i < end; ++i) acc += trace[i];
        const double m = acc / static_cast<double>(end - begin);
        const int bars = static_cast<int>(60.0 * (m - lo) / (hi - lo + 1e-9));
        std::printf("  %7zu  %12.2f  %s\n", begin, m, std::string(bars, '#').c_str());
    }

    const std::size_t burnIn = estimateBurnIn(trace);
    const auto post = std::span<const double>(trace).subspan(steps / 2);
    std::printf("\nestimated burn-in: ~%zu steps of %zu\n", burnIn, steps);
    std::printf("post-burn-in Geweke |Z|: %.2f (|Z| < 2 indicates stationarity)\n",
                std::fabs(gewekeZ(post)));
    std::printf("acceptance rate: %.3f\n", chain.acceptanceRate());
    std::printf("\nshape criterion: a visible initial climb followed by a flat,\n"
                "stationary region — the Fig 2 picture.\n");
    return 0;
}
