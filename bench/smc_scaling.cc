// SMC particle-filter scaling: one pass's wall time and logZ across a
// particles x backend x threads sweep. Particle propagation is
// embarrassingly parallel over fixed-size blocks (par/kernel.h
// launchBlocked with per-slot RNG streams) and the likelihood work is
// executed by a pluggable backend (lik/lik_backend.h), so throughput
// should scale with the thread count while logZ stays BITWISE identical
// across BOTH axes — this harness asserts the bitwise invariance over
// threads AND backends (exit 1 on any mismatch), then emits
// BENCH_smc.json (snapshot committed under bench/) with build provenance
// and per-row backend + batch statistics.
//
//   $ ./smc_scaling [--particles N] [--seqs n] [--length L] [--paper]
//                   [--backend arena|batched|both] [--require-scaling PCT]
//                   [--metrics 0|1]
//
// --require-scaling PCT exits 1 if the widest pool's throughput falls
// below PCT% of the 1-thread rate for any particle count, evaluated on
// the batched backend's rows (the CI regression gate against nominal
// parallelism).
//
// --metrics (default 1) arms the metrics registry; the per-row backend
// execution counters come straight from it (obs::reset() between rows),
// not from any bench-private stats copy. Run with --metrics 0 to measure
// the armed-vs-unarmed overhead (contract: within 2% at 8 threads);
// unarmed rows report zero counters.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench/workload.h"
#include "lik/felsenstein.h"
#include "obs/metrics.h"
#include "smc/smc_sampler.h"
#include "util/build_info.h"
#include "util/error.h"
#include "util/table.h"
#include "util/timer.h"

namespace {

struct Row {
    std::size_t particles;
    const char* backend;
    unsigned threads;
    double seconds;
    double particlesPerSec;
    double logZ;
    double speedupVs1T;
    std::uint64_t combineOps;         ///< lik.combine_ops over the pass
    std::uint64_t matricesRequested;  ///< naive 2-per-combine-per-category count
    std::uint64_t matricesComputed;   ///< matrices actually exponentiated
};

}  // namespace

int main(int argc, char** argv) {
    using namespace mpcgs;
    using namespace mpcgs::bench;
    const Options cli = Options::parse(argc, argv);
    if (cli.has("print-config")) {
        std::fputs(buildConfigSummary().c_str(), stdout);
        return 0;
    }
    const bool paper = cli.getBool("paper", false);
    const int nSeq = static_cast<int>(cli.getInt("seqs", 10));
    const std::size_t length = static_cast<std::size_t>(cli.getInt("length", 300));
    const std::size_t maxParticles =
        static_cast<std::size_t>(cli.getInt("particles", paper ? 8192 : 2048));
    const long requireScaling = cli.getInt("require-scaling", 0);
    const std::string backendArg = cli.get("backend", "both");
    std::vector<LikBackendKind> backends;
    if (backendArg == "both")
        backends = {LikBackendKind::Arena, LikBackendKind::Batched};
    else
        backends = {parseLikBackend(backendArg)};
    // The scaling gate judges the backend the tools default to.
    const char* gateBackend = likBackendName(
        backendArg == "both" ? LikBackendKind::Batched : backends.front());
    const bool metricsArmed = cli.getBool("metrics", true);
    if (metricsArmed) obs::arm();

    printHeader("SMC scaling (one filter pass per particles x backend x threads cell)");
    const Alignment data = makeDataset(nSeq, length, 1.0, 31);
    const F81Model model(data.baseFrequencies());
    const DataLikelihood lik(data, model);
    std::printf("%d sequences x %zu bp, theta = 1.0, systematic resampling\n\n", nSeq,
                length);

    bool bitwiseOk = true;
    std::vector<Row> rows;
    Table table({"particles", "backend", "threads", "time (s)", "particles/sec", "logZ",
                 "speedup"});
    for (std::size_t particles = 256; particles <= maxParticles; particles *= 4) {
        bool haveReference = false;
        double referenceLogZ = 0.0;  // 1-thread logZ of the first backend
        for (const LikBackendKind backend : backends) {
            SmcOptions opts;
            opts.particles = particles;
            opts.backend = backend;
            double oneThreadSeconds = 0.0;
            for (const unsigned threads : {1u, 2u, 4u, 8u}) {
                ThreadPool pool(threads);
                obs::reset();  // row isolation: counters below are per-pass
                Timer timer;
                const SmcPassResult res = runSmcPass(lik, 1.0, opts, 47, &pool);
                const double seconds = timer.seconds();
                const obs::MetricsSnapshot snap = obs::snapshot();
                if (threads == 1) oneThreadSeconds = seconds;
                if (!haveReference) {
                    referenceLogZ = res.logZ;
                    haveReference = true;
                } else if (std::memcmp(&res.logZ, &referenceLogZ, sizeof(double)) != 0) {
                    std::fprintf(stderr,
                                 "BITWISE MISMATCH: %zu particles, %s backend, %u "
                                 "threads: logZ %.17g vs reference %.17g\n",
                                 particles, res.backend.c_str(), threads, res.logZ,
                                 referenceLogZ);
                    bitwiseOk = false;
                }
                const double rate = static_cast<double>(particles) / seconds;
                rows.push_back({particles, likBackendName(backend), threads, seconds,
                                rate, res.logZ, oneThreadSeconds / seconds,
                                snap.counter(obs::Counter::LikCombineOps),
                                snap.counter(obs::Counter::LikMatricesRequested),
                                snap.counter(obs::Counter::LikMatricesComputed)});
                table.addRow({Table::integer(particles), likBackendName(backend),
                              Table::integer(threads), Table::num(seconds, 3),
                              Table::num(rate, 0), Table::num(res.logZ, 3),
                              Table::num(oneThreadSeconds / seconds, 2)});
            }
        }
    }
    table.print(std::cout);
    std::printf("\nlogZ bitwise thread- and backend-invariance: %s\n",
                bitwiseOk ? "PASS" : "FAIL");

    warnIfDirtyProvenance("BENCH_smc.json");
    std::ofstream json("BENCH_smc.json");
    json << "{\n  \"benchmark\": \"smc_scaling\",\n";
    json << "  \"provenance\": " << buildProvenanceJson() << ",\n";
    json << "  \"config\": {\"sequences\": " << nSeq << ", \"length\": " << length
         << ", \"scheme\": \"systematic\", \"bitwise_thread_invariant\": "
         << (bitwiseOk ? "true" : "false") << ", \"metrics_armed\": "
         << (metricsArmed ? "true" : "false") << "},\n  \"results\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row& r = rows[i];
        json << "    {\"particles\": " << r.particles << ", \"backend\": \""
             << r.backend << "\", \"threads\": " << r.threads
             << ", \"seconds\": " << r.seconds << ", \"particles_per_sec\": "
             << r.particlesPerSec << ", \"logZ\": " << r.logZ
             << ", \"speedup_vs_1t\": " << r.speedupVs1T
             << ", \"combine_ops\": " << r.combineOps
             << ", \"matrices_requested\": " << r.matricesRequested
             << ", \"matrices_computed\": " << r.matricesComputed << "}"
             << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    json << "  ]\n}\n";
    std::printf("wrote BENCH_smc.json (%zu rows)\n", rows.size());

    bool scalingOk = true;
    if (requireScaling > 0) {
        // Regression gate: for every particle count, the widest pool must
        // reach at least PCT% of the 1-thread rate on the gate backend.
        for (const Row& base : rows) {
            if (base.threads != 1 || std::strcmp(base.backend, gateBackend) != 0)
                continue;
            const Row* widest = &base;
            for (const Row& r : rows)
                if (r.particles == base.particles &&
                    std::strcmp(r.backend, gateBackend) == 0 &&
                    r.threads > widest->threads)
                    widest = &r;
            if (widest == &base) continue;
            const double floor =
                base.particlesPerSec * static_cast<double>(requireScaling) / 100.0;
            const bool pass = widest->particlesPerSec >= floor;
            std::printf("scaling gate [%s]: %zu particles, %u-thread %.0f/s vs "
                        "1-thread %.0f/s (floor %.0f/s) %s\n",
                        gateBackend, base.particles, widest->threads,
                        widest->particlesPerSec, base.particlesPerSec, floor,
                        pass ? "PASS" : "FAIL");
            scalingOk = scalingOk && pass;
        }
    }
    return (bitwiseOk && scalingOk) ? 0 : 1;
}
