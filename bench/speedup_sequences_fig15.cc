// Experiment E3 — Table 3 / Fig 15: speedup vs number of sequences. Paper
// sweep: n in {12, 24, 36, 48, 60, 84, 108, 132} at 200 bp; paper speedups
// {3.69, 3.41, 2.9, 2.78, 2.57, 2.43, 2.43, 2.83}.
//
// Shape criterion: flat-to-slightly-declining speedup as n grows (larger
// trees mean more serial per-proposal overhead relative to the
// parallelizable per-site work).
//
//   --paper : full sweep to n = 132 with more samples (slow)
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench/workload.h"
#include "util/table.h"

int main(int argc, char** argv) {
    using namespace mpcgs;
    using namespace mpcgs::bench;
    const BenchConfig cfg = BenchConfig::fromArgs(argc, argv);

    const std::vector<int> sweep = cfg.paperScale
                                       ? std::vector<int>{12, 24, 36, 48, 60, 84, 108, 132}
                                       : std::vector<int>{12, 24, 36, 48, 60};
    const std::vector<double> paperSpeedup{3.69, 3.41, 2.9, 2.78, 2.57, 2.43, 2.43, 2.83};
    const std::size_t samples = cfg.paperScale ? 20000 : 2500;

    printHeader("Table 3 / Fig 15: speedup vs number of sequences");
    std::printf("200 bp, %zu samples, %u threads\n", samples, cfg.threads);
    std::printf("(two baselines: recompute-all MH, and LAMARC-style cached MH whose\n"
                " per-move cost grows sublinearly with n — the paper's actual baseline)\n\n");

    Table table({"# sequences", "recompute MH (s)", "cached MH (s)", "GMH (s)",
                 "speedup vs recompute", "speedup vs cached", "paper speedup"});
    for (std::size_t i = 0; i < sweep.size(); ++i) {
        const Alignment data = makeDataset(sweep[i], 200, 1.0, 100 + static_cast<unsigned>(i));
        const SpeedupPoint p = measureSpeedup(data, samples, cfg.threads);

        MpcgsOptions cached;
        cached.theta0 = 1.0;
        cached.emIterations = 1;
        cached.samplesPerIteration = samples;
        cached.seed = 11;
        cached.strategy = Strategy::SerialMh;
        cached.cachedBaseline = true;
        const double cachedTime = estimateTheta(data, cached).samplingSeconds;

        table.addRow({Table::integer(sweep[i]), Table::num(p.baselineSeconds, 3),
                      Table::num(cachedTime, 3), Table::num(p.gmhSeconds, 3),
                      Table::num(p.speedup(), 2), Table::num(cachedTime / p.gmhSeconds, 2),
                      Table::num(paperSpeedup[i], 2)});
    }
    table.print(std::cout);
    std::printf("\nShape criterion (paper, Fig 15): speedup flat-to-declining with n.\n"
                "Against the cached baseline — the strategy production LAMARC uses —\n"
                "the ratio declines because the baseline's dirty path is O(depth) while\n"
                "the GMH kernel recomputes all O(n) nodes per proposal (§5.2.2).\n");
    return 0;
}
