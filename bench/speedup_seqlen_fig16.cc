// Experiment E4 — Table 4 / Fig 16: speedup vs sequence length. Paper
// sweep: L in {200, 400, 600, 800, 1000, 2000} bp on 12 sequences; paper
// speedups {3.69, 5.67, 7.86, 10.22, 12.63, 23.28} — the speedup grows
// roughly linearly with L because longer sequences mean more per-site
// parallel work per proposal.
//
// Shape criterion: monotonically increasing speedup with sequence length.
//
//   --paper : full sweep to 2000 bp with more samples (slow)
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench/workload.h"
#include "util/table.h"

int main(int argc, char** argv) {
    using namespace mpcgs;
    using namespace mpcgs::bench;
    const BenchConfig cfg = BenchConfig::fromArgs(argc, argv);

    const std::vector<std::size_t> sweep =
        cfg.paperScale ? std::vector<std::size_t>{200, 400, 600, 800, 1000, 2000}
                       : std::vector<std::size_t>{200, 400, 600, 800, 1000};
    const std::vector<double> paperSpeedup{3.69, 5.67, 7.86, 10.22, 12.63, 23.28};
    const std::size_t samples = cfg.paperScale ? 20000 : 2500;

    printHeader("Table 4 / Fig 16: speedup vs sequence length");
    std::printf("12 sequences, %zu samples, %u threads\n", samples, cfg.threads);
    std::printf("(site patterns are left uncompressed so per-site work scales with L,\n"
                " matching the paper's GPU kernel)\n\n");

    Table table({"sequence length", "serial MH (s)", "GMH (s)", "speedup", "paper speedup"});
    for (std::size_t i = 0; i < sweep.size(); ++i) {
        const Alignment data =
            makeDataset(12, sweep[i], 1.0, 200 + static_cast<unsigned>(i));
        // Longer sequences -> disable pattern compression (paper parity).
        MpcgsOptions opts;
        opts.theta0 = 1.0;
        opts.emIterations = 1;
        opts.samplesPerIteration = samples;
        opts.seed = 11;
        opts.compressPatterns = false;
        opts.gmhProposals = 48;
        opts.gmhSamplesPerSet = 48;  // Alg 1: M = N

        opts.strategy = Strategy::SerialMh;
        const double mhTime = estimateTheta(data, opts).samplingSeconds;
        opts.strategy = Strategy::Gmh;
        ThreadPool pool(cfg.threads);
        const double gmhTime = estimateTheta(data, opts, &pool).samplingSeconds;

        table.addRow({Table::integer(static_cast<long long>(sweep[i])),
                      Table::num(mhTime, 3), Table::num(gmhTime, 3),
                      Table::num(mhTime / gmhTime, 2), Table::num(paperSpeedup[i], 2)});
    }
    table.print(std::cout);
    std::printf("\nShape criterion: speedup increases with sequence length, as in Fig 16\n"
                "(the paper's strongest scaling dimension).\n");
    return 0;
}
