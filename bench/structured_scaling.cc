// Structured-coalescent scaling: samples/second of the two-population
// migration pipeline across a chains x threads sweep. The chains axis
// carries the parallelism (lockstep ChainScheduler rounds, one MH chain
// per worker), so throughput should scale with min(chains, threads) while
// staying bitwise invariant to the thread count — the estimate column is
// asserted identical across every thread row of a chain count. Emits
// BENCH_structured.json (snapshot committed under bench/). Note: like the
// other thread sweeps, the committed snapshot comes from the single-core
// dev container, where every thread row measures the same serial work —
// the sweep shows real scaling only on multi-core hardware.
//
//   $ ./structured_scaling [--samples N] [--seqs n] [--length L] [--paper-scale]
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "coalescent/structured.h"
#include "core/structured_estimator.h"
#include "rng/mt19937.h"
#include "seq/seqgen.h"
#include "seq/subst_model.h"
#include "util/build_info.h"
#include "util/options.h"
#include "util/table.h"

namespace {

struct Row {
    std::size_t chains;
    unsigned threads;
    std::size_t samples;
    double seconds;
    double samplesPerSec;
    double speedupVs1T;
    double theta1;
};

}  // namespace

int main(int argc, char** argv) {
    using namespace mpcgs;
    const Options cli = Options::parse(argc, argv);
    const bool paperScale = cli.getBool("paper-scale", false);
    const int nPerDeme = static_cast<int>(cli.getInt("seqs", 8)) / 2;
    const std::size_t length = static_cast<std::size_t>(cli.getInt("length", 200));
    const std::size_t samples =
        static_cast<std::size_t>(cli.getInt("samples", paperScale ? 8000 : 1500));

    std::printf("== structured (two-deme) scaling: samples/sec per chains x threads ==\n");

    // One fixed two-deme workload: truth theta = (1, 1), symmetric M = 0.5.
    MigrationModel truth(2, 1.0, 0.5);
    std::vector<int> demes;
    for (int i = 0; i < 2 * nPerDeme; ++i) demes.push_back(i < nPerDeme ? 0 : 1);
    Mt19937 rng(97);
    StructuredGenealogy g = simulateStructuredCoalescent(demes, truth, rng);
    SeqGenOptions so;
    so.length = length;
    const auto genModel = makeF84(2.0, kUniformFreqs);
    const Alignment aln = simulateSequences(g.tree(), *genModel, so, rng);
    std::printf("%d+%d sequences x %zu bp, %zu samples, one EM iteration\n\n", nPerDeme,
                nPerDeme, length, samples);

    std::vector<Row> rows;
    Table table({"chains", "threads", "time (s)", "samples/sec", "speedup", "theta_1"});
    for (const std::size_t chains : {1u, 2u, 4u, 8u}) {
        double oneThreadSeconds = 0.0;
        double referenceTheta1 = 0.0;
        for (const unsigned threads : {1u, 2u, 4u, 8u}) {
            StructuredOptions opts;
            opts.init = MigrationModel(2, 1.0, 0.5);
            opts.emIterations = 1;
            opts.samplesPerIteration = samples;
            opts.chains = chains;
            opts.seed = 23;

            ThreadPool pool(threads);
            const StructuredResult res = estimateStructured(aln, demes, opts, &pool);
            const std::size_t produced = res.history.front().samples;
            const double theta1 = res.estimate.theta[0];
            if (threads == 1) {
                oneThreadSeconds = res.samplingSeconds;
                referenceTheta1 = theta1;
            } else if (theta1 != referenceTheta1) {
                std::fprintf(stderr,
                             "FATAL: estimate depends on the thread count "
                             "(%.17g vs %.17g at %u threads)\n",
                             theta1, referenceTheta1, threads);
                return 1;
            }
            const double rate = static_cast<double>(produced) / res.samplingSeconds;
            const double speedup = oneThreadSeconds / res.samplingSeconds;
            rows.push_back({chains, threads, produced, res.samplingSeconds, rate, speedup,
                            theta1});
            table.addRow({Table::integer(chains), Table::integer(threads),
                          Table::num(res.samplingSeconds, 3), Table::num(rate, 0),
                          Table::num(speedup, 2), Table::num(theta1, 4)});
        }
    }
    table.print(std::cout);

    warnIfDirtyProvenance("BENCH_structured.json");
    std::ofstream json("BENCH_structured.json");
    json << "{\n  \"benchmark\": \"structured_scaling\",\n";
    json << "  \"provenance\": " << buildProvenanceJson() << ",\n";
    json << "  \"config\": {\"sequences_per_deme\": " << nPerDeme
         << ", \"length\": " << length << ", \"samples\": " << samples
         << ", \"true_theta\": [1.0, 1.0], \"true_mig\": 0.5},\n  \"results\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row& r = rows[i];
        json << "    {\"chains\": " << r.chains << ", \"threads\": " << r.threads
             << ", \"samples\": " << r.samples << ", \"seconds\": " << r.seconds
             << ", \"samples_per_sec\": " << r.samplesPerSec
             << ", \"speedup_vs_1t\": " << r.speedupVs1T << ", \"theta_1\": " << r.theta1
             << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    json << "  ]\n}\n";
    std::printf("\nwrote BENCH_structured.json (%zu rows)\n", rows.size());
    return 0;
}
