// Experiment E8 — micro-kernel benchmarks (google-benchmark): the costs of
// the sampler's building blocks, including the §5.2.2 ablation comparing
// full likelihood recomputation (the paper's GPU choice) against
// incremental dirty-path caching (the CPU alternative), and the
// scalar-vs-pattern-major likelihood kernel comparison (patterns/sec via
// items_per_second).
//
// Unless --benchmark_out is given, results are also written to
// BENCH_likelihood.json so successive PRs can track the perf trajectory.
#include <benchmark/benchmark.h>

#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "coalescent/death_process.h"
#include "coalescent/simulator.h"
#include "core/neighborhood.h"
#include "core/recoalesce.h"
#include "lik/felsenstein.h"
#include "par/kernel.h"
#include "util/build_info.h"
#include "phylo/upgma.h"
#include "rng/mt19937.h"
#include "rng/philox.h"
#include "seq/distance.h"
#include "seq/seqgen.h"
#include "seq/subst_model.h"
#include "util/logspace.h"

namespace {

using namespace mpcgs;

Alignment benchData(int n, std::size_t length, unsigned seed) {
    Mt19937 rng(seed);
    const Genealogy g = simulateCoalescent(n, 1.0, rng);
    const auto model = makeF84(2.0, kUniformFreqs);
    return simulateSequences(g, *model, {length, 1.0}, rng);
}

void BM_LogSumExp(benchmark::State& state) {
    std::vector<double> xs(static_cast<std::size_t>(state.range(0)));
    Mt19937 rng(1);
    for (auto& x : xs) x = -500.0 + 100.0 * rng.uniform01();
    for (auto _ : state) benchmark::DoNotOptimize(logSumExp(xs));
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LogSumExp)->Arg(64)->Arg(1024)->Arg(16384);

void BM_Mt19937(benchmark::State& state) {
    Mt19937 rng(2);
    for (auto _ : state) benchmark::DoNotOptimize(rng.nextU32());
}
BENCHMARK(BM_Mt19937);

void BM_Philox(benchmark::State& state) {
    Philox rng(3, 0);
    for (auto _ : state) benchmark::DoNotOptimize(rng.nextU32());
}
BENCHMARK(BM_Philox);

void BM_TransitionMatrixF81(benchmark::State& state) {
    const F81Model model(BaseFreqs{0.3, 0.2, 0.25, 0.25});
    double t = 0.01;
    for (auto _ : state) {
        benchmark::DoNotOptimize(model.transition(t));
        t += 1e-6;
    }
}
BENCHMARK(BM_TransitionMatrixF81);

void BM_TransitionMatrixGtr(benchmark::State& state) {
    const auto model = makeHky85(2.0, BaseFreqs{0.3, 0.2, 0.25, 0.25});
    double t = 0.01;
    for (auto _ : state) {
        benchmark::DoNotOptimize(model->transition(t));
        t += 1e-6;
    }
}
BENCHMARK(BM_TransitionMatrixGtr);

void BM_BlockReduceLogSumExp(benchmark::State& state) {
    const unsigned threads = static_cast<unsigned>(state.range(0));
    ThreadPool pool(threads);
    std::vector<double> xs(65536);
    Mt19937 rng(4);
    for (auto& x : xs) x = -100.0 * rng.uniform01();
    for (auto _ : state)
        benchmark::DoNotOptimize(blockReduceLogSumExp(&pool, xs, 256));
    state.SetItemsProcessed(state.iterations() * static_cast<long>(xs.size()));
}
BENCHMARK(BM_BlockReduceLogSumExp)->Arg(1)->Arg(4)->Arg(16);

/// The data-likelihood kernel: full pruning recomputation per call, the
/// paper's GPU strategy (§5.2.2), across sequence lengths. Runs the
/// pattern-major engine; items/sec is patterns/sec.
void BM_LikelihoodRecompute(benchmark::State& state) {
    Mt19937 rng(5);
    const Genealogy g = simulateCoalescent(12, 1.0, rng);
    const Alignment data = benchData(12, static_cast<std::size_t>(state.range(0)), 5);
    const F81Model model(data.baseFrequencies());
    const DataLikelihood lik(data, model, /*compress=*/false);
    for (auto _ : state) benchmark::DoNotOptimize(lik.logLikelihood(g));
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LikelihoodRecompute)->Arg(200)->Arg(1000)->Arg(2000);

/// The seed's scalar one-pattern-at-a-time pruning, kept as the reference
/// path: the speedup of BM_LikelihoodRecompute over this is the
/// pattern-major win.
void BM_LikelihoodScalarReference(benchmark::State& state) {
    Mt19937 rng(5);
    const Genealogy g = simulateCoalescent(12, 1.0, rng);
    const Alignment data = benchData(12, static_cast<std::size_t>(state.range(0)), 5);
    const F81Model model(data.baseFrequencies());
    const DataLikelihood lik(data, model, /*compress=*/false);
    for (auto _ : state) benchmark::DoNotOptimize(lik.logLikelihoodReference(g));
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LikelihoodScalarReference)->Arg(200)->Arg(1000)->Arg(2000);

/// Thread scaling of the blocked stateless evaluation (arg = pool width)
/// on the Fig 15 workload shape (48 sequences x 1000 sites, uncompressed).
void BM_LikelihoodThreadScaling(benchmark::State& state) {
    Mt19937 rng(15);
    const Genealogy g = simulateCoalescent(48, 1.0, rng);
    const Alignment data = benchData(48, 1000, 15);
    const F81Model model(data.baseFrequencies());
    const DataLikelihood lik(data, model, /*compress=*/false);
    ThreadPool pool(static_cast<unsigned>(state.range(0)));
    for (auto _ : state) benchmark::DoNotOptimize(lik.logLikelihood(g, &pool));
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_LikelihoodThreadScaling)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

/// Thread scaling of cached full evaluation (arg = pool width), Fig 15
/// workload: every worker prunes the full postorder over its own pattern
/// slice of the persistent arena.
void BM_CachedEvaluateThreadScaling(benchmark::State& state) {
    Mt19937 rng(16);
    const Genealogy g = simulateCoalescent(48, 1.0, rng);
    const Alignment data = benchData(48, 1000, 16);
    const F81Model model(data.baseFrequencies());
    const DataLikelihood lik(data, model, /*compress=*/false);
    LikelihoodCache cache(lik);
    ThreadPool pool(static_cast<unsigned>(state.range(0)));
    for (auto _ : state) benchmark::DoNotOptimize(cache.evaluate(g, &pool));
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_CachedEvaluateThreadScaling)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

/// Ablation: incremental dirty-path update after a single-node change —
/// the caching strategy the paper rejected for the GPU.
void BM_LikelihoodIncremental(benchmark::State& state) {
    Mt19937 rng(6);
    Genealogy g = simulateCoalescent(12, 1.0, rng);
    const Alignment data = benchData(12, static_cast<std::size_t>(state.range(0)), 6);
    const F81Model model(data.baseFrequencies());
    const DataLikelihood lik(data, model, /*compress=*/false);
    LikelihoodCache cache(lik);
    cache.evaluate(g);
    const auto internals = g.internalsByTime();
    const NodeId moved = internals[0];
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.evaluateDirty(g, {moved}));
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LikelihoodIncremental)->Arg(200)->Arg(1000)->Arg(2000);

void BM_SitePatternCompression(benchmark::State& state) {
    const Alignment data = benchData(12, 2000, 7);
    for (auto _ : state) benchmark::DoNotOptimize(SitePatterns(data, true));
}
BENCHMARK(BM_SitePatternCompression);

/// The proposal kernel (§5.2.1): region construction + one resimulated
/// proposal + its exact density.
void BM_NeighborhoodProposal(benchmark::State& state) {
    Mt19937 rng(8);
    const Genealogy g = simulateCoalescent(static_cast<int>(state.range(0)), 1.0, rng);
    for (auto _ : state) {
        const NeighborhoodRegion region = makeNeighborhoodRegion(g, 1.0, rng);
        const Genealogy p = proposeInNeighborhood(region, rng);
        benchmark::DoNotOptimize(logNeighborhoodDensity(region, p));
    }
}
BENCHMARK(BM_NeighborhoodProposal)->Arg(12)->Arg(48)->Arg(132);

/// The baseline LAMARC move for comparison.
void BM_RecoalesceProposal(benchmark::State& state) {
    Mt19937 rng(9);
    Genealogy g = simulateCoalescent(static_cast<int>(state.range(0)), 1.0, rng);
    for (auto _ : state) {
        auto prop = proposeRecoalesce(g, 1.0, rng);
        benchmark::DoNotOptimize(prop.logForward);
        g = std::move(prop.state);
    }
}
BENCHMARK(BM_RecoalesceProposal)->Arg(12)->Arg(48)->Arg(132);

void BM_CoalescentSimulator(benchmark::State& state) {
    Mt19937 rng(10);
    for (auto _ : state)
        benchmark::DoNotOptimize(simulateCoalescent(static_cast<int>(state.range(0)), 1.0, rng));
}
BENCHMARK(BM_CoalescentSimulator)->Arg(12)->Arg(132);

void BM_Upgma(benchmark::State& state) {
    const Alignment data = benchData(static_cast<int>(state.range(0)), 200, 11);
    const auto dist = hammingMatrix(data);
    for (auto _ : state) benchmark::DoNotOptimize(upgmaTree(dist));
}
BENCHMARK(BM_Upgma)->Arg(12)->Arg(60);

void BM_DeathProcessSample(benchmark::State& state) {
    std::vector<FeasibleInterval> ivs{
        {0.0, 0.1, 3, 1}, {0.1, 0.25, 2, 1}, {0.25, 1.0, 1, 1}};
    const DeathProcess dp(std::move(ivs), 1.0);
    Mt19937 rng(12);
    for (auto _ : state) benchmark::DoNotOptimize(dp.sampleMergeTimes(rng));
}
BENCHMARK(BM_DeathProcessSample);

}  // namespace

// BENCHMARK_MAIN(), plus a default JSON artifact: when the caller didn't
// pick an output file, emit BENCH_likelihood.json in the working directory
// so the perf trajectory is tracked across PRs.
int main(int argc, char** argv) {
    std::vector<char*> args(argv, argv + argc);
    std::string outFlag = "--benchmark_out=BENCH_likelihood.json";
    std::string fmtFlag = "--benchmark_out_format=json";
    bool hasOut = false;
    for (int i = 1; i < argc; ++i)
        if (std::strncmp(argv[i], "--benchmark_out=", 16) == 0) hasOut = true;
    if (!hasOut) {
        args.push_back(outFlag.data());
        args.push_back(fmtFlag.data());
        mpcgs::warnIfDirtyProvenance("BENCH_likelihood.json");
    }
    int n = static_cast<int>(args.size());
    benchmark::Initialize(&n, args.data());
    if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    // google-benchmark owns the JSON layout, so graft the provenance block
    // in after the fact: re-open the default artifact and splice
    // buildProvenanceJson() in right behind the opening brace, matching
    // the hand-rolled BENCH_* emitters.
    if (!hasOut) {
        std::ifstream in("BENCH_likelihood.json");
        if (in) {
            std::stringstream buf;
            buf << in.rdbuf();
            in.close();
            std::string doc = buf.str();
            const std::size_t brace = doc.find('{');
            if (brace != std::string::npos) {
                doc.insert(brace + 1,
                           "\n  \"provenance\": " + mpcgs::buildProvenanceJson() + ",");
                std::ofstream out("BENCH_likelihood.json");
                out << doc;
            }
        }
    }
    return 0;
}
