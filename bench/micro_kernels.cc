// Experiment E8 — micro-kernel benchmarks (google-benchmark): the costs of
// the sampler's building blocks, including the §5.2.2 ablation comparing
// full likelihood recomputation (the paper's GPU choice) against
// incremental dirty-path caching (the CPU alternative).
#include <benchmark/benchmark.h>

#include "coalescent/death_process.h"
#include "coalescent/simulator.h"
#include "core/neighborhood.h"
#include "core/recoalesce.h"
#include "lik/felsenstein.h"
#include "par/kernel.h"
#include "phylo/upgma.h"
#include "rng/mt19937.h"
#include "rng/philox.h"
#include "seq/distance.h"
#include "seq/seqgen.h"
#include "seq/subst_model.h"
#include "util/logspace.h"

namespace {

using namespace mpcgs;

Alignment benchData(int n, std::size_t length, unsigned seed) {
    Mt19937 rng(seed);
    const Genealogy g = simulateCoalescent(n, 1.0, rng);
    const auto model = makeF84(2.0, kUniformFreqs);
    return simulateSequences(g, *model, {length, 1.0}, rng);
}

void BM_LogSumExp(benchmark::State& state) {
    std::vector<double> xs(static_cast<std::size_t>(state.range(0)));
    Mt19937 rng(1);
    for (auto& x : xs) x = -500.0 + 100.0 * rng.uniform01();
    for (auto _ : state) benchmark::DoNotOptimize(logSumExp(xs));
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LogSumExp)->Arg(64)->Arg(1024)->Arg(16384);

void BM_Mt19937(benchmark::State& state) {
    Mt19937 rng(2);
    for (auto _ : state) benchmark::DoNotOptimize(rng.nextU32());
}
BENCHMARK(BM_Mt19937);

void BM_Philox(benchmark::State& state) {
    Philox rng(3, 0);
    for (auto _ : state) benchmark::DoNotOptimize(rng.nextU32());
}
BENCHMARK(BM_Philox);

void BM_TransitionMatrixF81(benchmark::State& state) {
    const F81Model model(BaseFreqs{0.3, 0.2, 0.25, 0.25});
    double t = 0.01;
    for (auto _ : state) {
        benchmark::DoNotOptimize(model.transition(t));
        t += 1e-6;
    }
}
BENCHMARK(BM_TransitionMatrixF81);

void BM_TransitionMatrixGtr(benchmark::State& state) {
    const auto model = makeHky85(2.0, BaseFreqs{0.3, 0.2, 0.25, 0.25});
    double t = 0.01;
    for (auto _ : state) {
        benchmark::DoNotOptimize(model->transition(t));
        t += 1e-6;
    }
}
BENCHMARK(BM_TransitionMatrixGtr);

void BM_BlockReduceLogSumExp(benchmark::State& state) {
    const unsigned threads = static_cast<unsigned>(state.range(0));
    ThreadPool pool(threads);
    std::vector<double> xs(65536);
    Mt19937 rng(4);
    for (auto& x : xs) x = -100.0 * rng.uniform01();
    for (auto _ : state)
        benchmark::DoNotOptimize(blockReduceLogSumExp(&pool, xs, 256));
    state.SetItemsProcessed(state.iterations() * static_cast<long>(xs.size()));
}
BENCHMARK(BM_BlockReduceLogSumExp)->Arg(1)->Arg(4)->Arg(16);

/// The data-likelihood kernel: full pruning recomputation per call, the
/// paper's GPU strategy (§5.2.2), across sequence lengths.
void BM_LikelihoodRecompute(benchmark::State& state) {
    Mt19937 rng(5);
    const Genealogy g = simulateCoalescent(12, 1.0, rng);
    const Alignment data = benchData(12, static_cast<std::size_t>(state.range(0)), 5);
    const F81Model model(data.baseFrequencies());
    const DataLikelihood lik(data, model, /*compress=*/false);
    for (auto _ : state) benchmark::DoNotOptimize(lik.logLikelihood(g));
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LikelihoodRecompute)->Arg(200)->Arg(1000)->Arg(2000);

/// Ablation: incremental dirty-path update after a single-node change —
/// the caching strategy the paper rejected for the GPU.
void BM_LikelihoodIncremental(benchmark::State& state) {
    Mt19937 rng(6);
    Genealogy g = simulateCoalescent(12, 1.0, rng);
    const Alignment data = benchData(12, static_cast<std::size_t>(state.range(0)), 6);
    const F81Model model(data.baseFrequencies());
    const DataLikelihood lik(data, model, /*compress=*/false);
    LikelihoodCache cache(lik);
    cache.evaluate(g);
    const auto internals = g.internalsByTime();
    const NodeId moved = internals[0];
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.evaluateDirty(g, {moved}));
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LikelihoodIncremental)->Arg(200)->Arg(1000)->Arg(2000);

void BM_SitePatternCompression(benchmark::State& state) {
    const Alignment data = benchData(12, 2000, 7);
    for (auto _ : state) benchmark::DoNotOptimize(SitePatterns(data, true));
}
BENCHMARK(BM_SitePatternCompression);

/// The proposal kernel (§5.2.1): region construction + one resimulated
/// proposal + its exact density.
void BM_NeighborhoodProposal(benchmark::State& state) {
    Mt19937 rng(8);
    const Genealogy g = simulateCoalescent(static_cast<int>(state.range(0)), 1.0, rng);
    for (auto _ : state) {
        const NeighborhoodRegion region = makeNeighborhoodRegion(g, 1.0, rng);
        const Genealogy p = proposeInNeighborhood(region, rng);
        benchmark::DoNotOptimize(logNeighborhoodDensity(region, p));
    }
}
BENCHMARK(BM_NeighborhoodProposal)->Arg(12)->Arg(48)->Arg(132);

/// The baseline LAMARC move for comparison.
void BM_RecoalesceProposal(benchmark::State& state) {
    Mt19937 rng(9);
    Genealogy g = simulateCoalescent(static_cast<int>(state.range(0)), 1.0, rng);
    for (auto _ : state) {
        auto prop = proposeRecoalesce(g, 1.0, rng);
        benchmark::DoNotOptimize(prop.logForward);
        g = std::move(prop.state);
    }
}
BENCHMARK(BM_RecoalesceProposal)->Arg(12)->Arg(48)->Arg(132);

void BM_CoalescentSimulator(benchmark::State& state) {
    Mt19937 rng(10);
    for (auto _ : state)
        benchmark::DoNotOptimize(simulateCoalescent(static_cast<int>(state.range(0)), 1.0, rng));
}
BENCHMARK(BM_CoalescentSimulator)->Arg(12)->Arg(132);

void BM_Upgma(benchmark::State& state) {
    const Alignment data = benchData(static_cast<int>(state.range(0)), 200, 11);
    const auto dist = hammingMatrix(data);
    for (auto _ : state) benchmark::DoNotOptimize(upgmaTree(dist));
}
BENCHMARK(BM_Upgma)->Arg(12)->Arg(60);

void BM_DeathProcessSample(benchmark::State& state) {
    std::vector<FeasibleInterval> ivs{
        {0.0, 0.1, 3, 1}, {0.1, 0.25, 2, 1}, {0.25, 1.0, 1, 1}};
    const DeathProcess dp(std::move(ivs), 1.0);
    Mt19937 rng(12);
    for (auto _ : state) benchmark::DoNotOptimize(dp.sampleMergeTimes(rng));
}
BENCHMARK(BM_DeathProcessSample);

}  // namespace

BENCHMARK_MAIN();
