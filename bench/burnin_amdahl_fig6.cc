// Experiment E6 — Fig 6 + Eq. 27: the burn-in Amdahl bottleneck of the
// multi-chain workaround versus GMH.
//
// Multi-chain with P chains produces N total samples in time proportional
// to B + N/P per processor, because *every* chain pays the burn-in B. The
// measured wall time is compared with the B + N/P cost model and with the
// GMH sampler, whose burn-in parallelizes ((B + N)/P idealized).
//
// Shape criterion: multi-chain efficiency decays toward the B-bound as P
// grows; GMH keeps improving with P over the same budgets.
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench/workload.h"
#include "util/table.h"

int main(int argc, char** argv) {
    using namespace mpcgs;
    using namespace mpcgs::bench;
    const BenchConfig cfg = BenchConfig::fromArgs(argc, argv);
    const std::size_t totalSamples = cfg.paperScale ? 24000 : 6000;

    printHeader("Fig 6 / Eq. 27: burn-in limits multi-chain scaling");
    const Alignment data = makeDataset(12, 200, 1.0, 6);
    // Burn-in permille of 400 means B = 0.4 * N: substantial, as in Fig 6
    // where B = N per chain.
    const std::size_t burnPermille = 400;
    std::printf("12 sequences x 200 bp, N = %zu total samples, B = %.0f%% of N per chain\n\n",
                totalSamples, burnPermille / 10.0);

    MpcgsOptions base;
    base.theta0 = 1.0;
    base.emIterations = 1;
    base.samplesPerIteration = totalSamples;
    base.burnInFraction1000 = burnPermille;
    base.seed = 9;

    // Reference: single chain (P = 1).
    MpcgsOptions single = base;
    single.strategy = Strategy::SerialMh;
    const double t1 = estimateTheta(data, single).samplingSeconds;
    std::printf("single-chain reference: %.3fs\n\n", t1);

    const double bFrac = static_cast<double>(burnPermille) / 1000.0;

    Table table({"P (chains=threads)", "multichain (s)", "model B+N/P", "multichain speedup",
                 "GMH (s)", "GMH speedup"});
    for (const unsigned p : {1u, 2u, 4u, 8u, 16u}) {
        if (p > hardwareThreads()) continue;
        ThreadPool pool(p);

        MpcgsOptions mc = base;
        mc.strategy = Strategy::MultiChain;
        mc.chains = p;
        const double tMc = estimateTheta(data, mc, &pool).samplingSeconds;

        MpcgsOptions gmh = base;
        gmh.strategy = Strategy::Gmh;
        gmh.gmhProposals = 48;
        gmh.gmhSamplesPerSet = 48;
        const double tGmh = estimateTheta(data, gmh, &pool).samplingSeconds;

        // Eq. 27 cost model, normalized so P = 1 matches the single chain:
        // time(P) ~ t1 * (B + N/P) / (B + N) with B = bFrac * N.
        const double model = t1 * (bFrac + 1.0 / p) / (bFrac + 1.0);

        table.addRow({Table::integer(p), Table::num(tMc, 3), Table::num(model, 3),
                      Table::num(t1 / tMc, 2), Table::num(tGmh, 3),
                      Table::num(t1 / tGmh, 2)});
    }
    table.print(std::cout);
    std::printf("\nlim_{P->inf} (B + N/P) = B (Eq. 27): multichain speedup saturates at\n"
                "(B+N)/B = %.2fx while the GMH sampler has no serial burn-in component.\n",
                (bFrac + 1.0) / bFrac);
    return 0;
}
