// Experiment E1 — Table 1 / Fig 13 of the paper: accuracy of theta
// estimation. For each true theta in {0.5, 1, 2, 3, 4}, simulate replicate
// data sets (12 sequences x 200 bp, F84), estimate theta with the serial MH
// baseline (the LAMARC role) and with GMH (mpcgs), and report mean, stdev
// and the Pearson correlation against truth.
//
// Paper values for reference (Table 1): LAMARC {0.858, 0.959, 2.521, 5.432,
// 4.384}, mpcgs {0.966, 1.131, 2.423, 5.32, 3.913}, r = 0.905.
//
//   --paper  : more replicates and samples (slower, tighter estimates)
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench/workload.h"
#include "util/stats.h"
#include "util/table.h"

int main(int argc, char** argv) {
    using namespace mpcgs;
    using namespace mpcgs::bench;
    const BenchConfig cfg = BenchConfig::fromArgs(argc, argv);
    const int reps = cfg.paperScale ? 8 : 3;
    const std::size_t samples = cfg.paperScale ? 20000 : 4000;

    printHeader("Table 1 / Fig 13: theta-estimation accuracy (paper r = 0.905)");
    std::printf("12 sequences x 200 bp, F84 data, %d replicates, %zu samples/EM step\n\n",
                reps, samples);

    const std::vector<double> trueThetas{0.5, 1.0, 2.0, 3.0, 4.0};
    ThreadPool pool(cfg.threads);

    Table table({"true theta", "MH mean", "MH stdev", "mpcgs mean", "mpcgs stdev"});
    std::vector<double> truthAll, mhAll, gmhAll, mhMeans, gmhMeans;

    for (const double theta : trueThetas) {
        std::vector<double> mhEst, gmhEst;
        for (int rep = 0; rep < reps; ++rep) {
            const unsigned seed = static_cast<unsigned>(1000.0 * theta) + 17u * rep;
            const Alignment data = makeDataset(12, 200, theta, seed);

            MpcgsOptions opts;
            opts.theta0 = 1.0;  // common driving start, as LAMARC defaults
            opts.emIterations = 4;
            opts.samplesPerIteration = samples;
            opts.seed = seed;

            opts.strategy = Strategy::SerialMh;
            mhEst.push_back(estimateTheta(data, opts).theta);
            opts.strategy = Strategy::Gmh;
            gmhEst.push_back(estimateTheta(data, opts, &pool).theta);

            truthAll.push_back(theta);
            mhAll.push_back(mhEst.back());
            gmhAll.push_back(gmhEst.back());
        }
        mhMeans.push_back(mean(mhEst));
        gmhMeans.push_back(mean(gmhEst));
        table.addRow({Table::num(theta, 1), Table::num(mean(mhEst)), Table::num(stdev(mhEst)),
                      Table::num(mean(gmhEst)), Table::num(stdev(gmhEst))});
    }

    table.print(std::cout);
    std::printf("\nPearson r (truth vs serial MH):  %.3f\n", pearson(truthAll, mhAll));
    std::printf("Pearson r (truth vs mpcgs/GMH):  %.3f   [paper: 0.905]\n",
                pearson(truthAll, gmhAll));
    std::printf("Pearson r (MH vs GMH):           %.3f\n", pearson(mhAll, gmhAll));
    std::printf("Pearson r (per-theta means):     %.3f\n", pearson(mhMeans, gmhMeans));
    std::printf("\nShape criterion: both estimators track truth strongly (r >~ 0.9) and\n"
                "agree with each other, matching the paper's conclusion that the\n"
                "multi-proposal sampler preserves the accuracy of the original.\n");
    return 0;
}
