// Ablation — §7 future work: "tuning various parameters such as the size
// of the proposal set that Calderhead's method produces".
//
// Sweeps the proposal-set size N (with M = N draws per set) and reports
// wall time, statistical efficiency (effective sample size of the TMRCA
// trace) and the cost of one effective sample. Small N under-utilizes the
// parallel width; large N produces heavily correlated within-set draws, so
// time-per-ESS has an interior optimum that depends on the thread count.
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench/workload.h"
#include "core/genealogy_problem.h"
#include "core/driver.h"
#include "lik/felsenstein.h"
#include "mcmc/gmh.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/timer.h"

int main(int argc, char** argv) {
    using namespace mpcgs;
    using namespace mpcgs::bench;
    const BenchConfig cfg = BenchConfig::fromArgs(argc, argv);
    const std::size_t totalSamples = cfg.paperScale ? 40000 : 12000;

    printHeader("Ablation: proposal-set size N (thesis §7 tuning question)");
    const Alignment data = makeDataset(12, 300, 1.0, 77);
    const F81Model model(data.baseFrequencies());
    const DataLikelihood lik(data, model);
    const double theta = 1.0;
    std::printf("12 sequences x 300 bp, %zu samples per configuration, %u threads\n\n",
                totalSamples, cfg.threads);

    ThreadPool pool(cfg.threads);
    Table table({"N (=M)", "time (s)", "move rate", "ESS(tmrca)", "ms per eff. sample"});
    for (const std::size_t n : {2u, 4u, 8u, 16u, 32u, 64u, 128u}) {
        const GmhGenealogyProblem problem(lik, theta);
        GmhOptions gopt;
        gopt.numProposals = n;
        gopt.samplesPerIteration = n;
        gopt.seed = 3;
        GmhSampler<GmhGenealogyProblem> sampler(problem, gopt, &pool);

        std::vector<double> trace;
        trace.reserve(totalSamples);
        const std::size_t iters = totalSamples / n;
        Timer timer;
        sampler.run(initialGenealogy(data, theta), iters / 10 + 1, iters,
                    [&](const Genealogy& g) { trace.push_back(g.tmrca()); });
        const double seconds = timer.seconds();
        const double ess = effectiveSampleSize(trace);
        table.addRow({Table::integer(static_cast<long long>(n)), Table::num(seconds, 3),
                      Table::num(sampler.stats().moveRate(), 2), Table::num(ess, 0),
                      Table::num(1e3 * seconds / ess, 2)});
    }
    table.print(std::cout);
    std::printf("\nReading: the optimum N balances parallel width against within-set\n"
                "sample correlation; past ~2x the thread count, extra proposals only\n"
                "add correlated draws.\n");
    return 0;
}
