// Sampler-runtime throughput: samples/second for every strategy across a
// thread sweep, all running through the unified SamplerRun path. Emits
// BENCH_mcmc.json (snapshot committed under bench/) so successive PRs can
// track the sampling-throughput trajectory next to BENCH_likelihood.json.
//
//   $ ./sampler_throughput [--samples N] [--seqs n] [--length L] [--paper-scale]
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench/workload.h"
#include "util/table.h"
#include "util/timer.h"

namespace {

struct Row {
    std::string strategy;
    unsigned threads;
    std::size_t samples;
    double seconds;
    double samplesPerSec;
};

}  // namespace

int main(int argc, char** argv) {
    using namespace mpcgs;
    using namespace mpcgs::bench;
    const BenchConfig cfg = BenchConfig::fromArgs(argc, argv);
    const Options cli = Options::parse(argc, argv);
    const int nSeq = static_cast<int>(cli.getInt("seqs", 10));
    const std::size_t length = static_cast<std::size_t>(cli.getInt("length", 300));
    const std::size_t samples =
        static_cast<std::size_t>(cli.getInt("samples", cfg.paperScale ? 24000 : 4000));

    printHeader("sampler runtime throughput (samples/sec per strategy x threads)");
    const Alignment data = makeDataset(nSeq, length, 1.0, 17);
    std::printf("%d sequences x %zu bp, %zu samples per run, one EM iteration\n\n", nSeq,
                length, samples);

    const std::vector<std::pair<std::string, Strategy>> strategies{
        {"gmh", Strategy::Gmh},
        {"mh", Strategy::SerialMh},
        {"multichain", Strategy::MultiChain},
        {"heated", Strategy::HeatedMh},
    };

    std::vector<Row> rows;
    Table table({"strategy", "threads", "time (s)", "samples/sec"});
    for (const auto& [name, strategy] : strategies) {
        // Pool widths beyond the hardware are oversubscribed but still
        // measured; note that the multichain rows couple the ensemble size
        // to the thread count (chains = P = threads, the §3 configuration),
        // so those rows are different workloads, not replicas.
        for (const unsigned threads : {1u, 2u, 4u, 8u}) {
            // The serial baseline gains nothing from extra workers; its
            // sweep is collapsed to the single-thread row.
            if ((strategy == Strategy::SerialMh) && threads > 1) continue;

            MpcgsOptions opts;
            opts.theta0 = 1.0;
            opts.emIterations = 1;
            opts.samplesPerIteration = samples;
            opts.seed = 23;
            opts.strategy = strategy;
            opts.gmhProposals = 32;
            opts.gmhSamplesPerSet = 32;
            opts.chains = threads;

            ThreadPool pool(threads);
            const MpcgsResult res = estimateTheta(data, opts, &pool);
            const std::size_t produced = res.history.front().samples;
            const double rate = static_cast<double>(produced) / res.samplingSeconds;
            rows.push_back({name, threads, produced, res.samplingSeconds, rate});
            table.addRow({name, Table::integer(threads), Table::num(res.samplingSeconds, 3),
                          Table::num(rate, 0)});
        }
    }
    table.print(std::cout);

    std::ofstream json("BENCH_mcmc.json");
    json << "{\n  \"benchmark\": \"sampler_throughput\",\n";
    json << "  \"config\": {\"sequences\": " << nSeq << ", \"length\": " << length
         << ", \"samples\": " << samples << "},\n  \"results\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row& r = rows[i];
        json << "    {\"strategy\": \"" << r.strategy << "\", \"threads\": " << r.threads
             << ", \"samples\": " << r.samples << ", \"seconds\": " << r.seconds
             << ", \"samples_per_sec\": " << r.samplesPerSec << "}"
             << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    json << "  ]\n}\n";
    std::printf("\nwrote BENCH_mcmc.json (%zu rows)\n", rows.size());
    return 0;
}
