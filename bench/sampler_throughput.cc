// Sampler-runtime throughput: samples/second for every strategy across a
// thread sweep, all running through the unified SamplerRun path. Emits
// BENCH_mcmc.json (snapshot committed under bench/) so successive PRs can
// track the sampling-throughput trajectory next to BENCH_likelihood.json.
//
// Every row of a strategy's sweep runs the SAME workload (fixed ensemble
// size), so the thread column is a true scaling curve. The earlier
// revision coupled chains = threads for the ensemble strategies, which
// made the 8-thread row an 8x-larger job and read as a slowdown.
//
//   $ ./sampler_throughput [--samples N] [--seqs n] [--length L] [--paper-scale]
//                          [--require-scaling PCT]
//
// --require-scaling PCT exits 1 if any strategy's widest-pool rate falls
// below PCT% of its 1-thread rate (the CI regression gate against nominal
// parallelism).
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "bench/workload.h"
#include "util/build_info.h"
#include "util/table.h"
#include "util/timer.h"

namespace {

struct Row {
    std::string strategy;
    unsigned threads;
    std::size_t samples;
    double seconds;
    double samplesPerSec;
};

}  // namespace

int main(int argc, char** argv) {
    using namespace mpcgs;
    using namespace mpcgs::bench;
    const BenchConfig cfg = BenchConfig::fromArgs(argc, argv);
    const Options cli = Options::parse(argc, argv);
    const int nSeq = static_cast<int>(cli.getInt("seqs", 10));
    const std::size_t length = static_cast<std::size_t>(cli.getInt("length", 300));
    const std::size_t samples =
        static_cast<std::size_t>(cli.getInt("samples", cfg.paperScale ? 24000 : 4000));
    const long requireScaling = cli.getInt("require-scaling", 0);

    printHeader("sampler runtime throughput (samples/sec per strategy x threads)");
    const Alignment data = makeDataset(nSeq, length, 1.0, 17);
    std::printf("%d sequences x %zu bp, %zu samples per run, one EM iteration\n\n", nSeq,
                length, samples);

    const std::vector<std::pair<std::string, Strategy>> strategies{
        {"gmh", Strategy::Gmh},
        {"mh", Strategy::SerialMh},
        {"multichain", Strategy::MultiChain},
        {"heated", Strategy::HeatedMh},
    };

    std::vector<Row> rows;
    Table table({"strategy", "threads", "time (s)", "samples/sec"});
    for (const auto& [name, strategy] : strategies) {
        for (const unsigned threads : {1u, 2u, 4u, 8u}) {
            // The serial baseline gains nothing from extra workers; its
            // sweep is collapsed to the single-thread row.
            if ((strategy == Strategy::SerialMh) && threads > 1) continue;

            MpcgsOptions opts;
            opts.theta0 = 1.0;
            opts.emIterations = 1;
            opts.samplesPerIteration = samples;
            opts.seed = 23;
            opts.strategy = strategy;
            opts.gmhProposals = 32;
            opts.gmhSamplesPerSet = 32;
            // Fixed ensemble sizes independent of the pool width: the
            // multichain ensemble and the MC^3 ladder are part of the
            // workload, not of the execution resources.
            opts.chains = strategy == Strategy::HeatedMh ? 4 : 8;

            ThreadPool pool(threads);
            const MpcgsResult res = estimateTheta(data, opts, &pool);
            const std::size_t produced = res.history.front().samples;
            const double rate = static_cast<double>(produced) / res.samplingSeconds;
            rows.push_back({name, threads, produced, res.samplingSeconds, rate});
            table.addRow({name, Table::integer(threads), Table::num(res.samplingSeconds, 3),
                          Table::num(rate, 0)});
        }
    }
    table.print(std::cout);

    warnIfDirtyProvenance("BENCH_mcmc.json");
    std::ofstream json("BENCH_mcmc.json");
    json << "{\n  \"benchmark\": \"sampler_throughput\",\n";
    json << "  \"provenance\": " << buildProvenanceJson() << ",\n";
    json << "  \"config\": {\"sequences\": " << nSeq << ", \"length\": " << length
         << ", \"samples\": " << samples
         << ", \"chains\": {\"multichain\": 8, \"heated\": 4}},\n  \"results\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row& r = rows[i];
        json << "    {\"strategy\": \"" << r.strategy << "\", \"threads\": " << r.threads
             << ", \"samples\": " << r.samples << ", \"seconds\": " << r.seconds
             << ", \"samples_per_sec\": " << r.samplesPerSec << "}"
             << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    json << "  ]\n}\n";
    std::printf("\nwrote BENCH_mcmc.json (%zu rows)\n", rows.size());

    if (requireScaling > 0) {
        // Regression gate: the widest pool must reach at least PCT% of the
        // 1-thread rate for every multi-row strategy (slack absorbs runner
        // noise; anything below it means parallelism went nominal again).
        std::map<std::string, double> rate1, rateMax;
        std::map<std::string, unsigned> widest;
        for (const Row& r : rows) {
            if (r.threads == 1) rate1[r.strategy] = r.samplesPerSec;
            if (r.threads >= widest[r.strategy]) {
                widest[r.strategy] = r.threads;
                rateMax[r.strategy] = r.samplesPerSec;
            }
        }
        bool ok = true;
        for (const auto& [name, r1] : rate1) {
            if (widest[name] == 1) continue;
            const double floor = r1 * static_cast<double>(requireScaling) / 100.0;
            const bool pass = rateMax[name] >= floor;
            std::printf("scaling gate: %-10s %u-thread %.0f/s vs 1-thread %.0f/s "
                        "(floor %.0f/s) %s\n",
                        name.c_str(), widest[name], rateMax[name], r1, floor,
                        pass ? "PASS" : "FAIL");
            ok = ok && pass;
        }
        if (!ok) return 1;
    }
    return 0;
}
