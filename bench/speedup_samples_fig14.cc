// Experiment E2 — Table 2 / Fig 14: speedup vs number of genealogy samples
// per EM iteration. Paper sweep: {20k, 30k, 40k, 60k, 80k, 100k} samples on
// 12 sequences x 200 bp; paper speedups {3.69, 3.8, 3.95, 4.19, 4.27, 4.32}
// (GPU vs one CPU core). Here: serial MH baseline vs GMH on all cores.
//
// Shape criterion: speedup roughly flat, rising slightly with sample count
// (fixed costs amortize; the parallel fraction is constant per sample).
//
//   --paper : run the paper's sample counts (slower)
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench/workload.h"
#include "util/table.h"

int main(int argc, char** argv) {
    using namespace mpcgs;
    using namespace mpcgs::bench;
    const BenchConfig cfg = BenchConfig::fromArgs(argc, argv);

    const std::vector<std::size_t> sweep =
        cfg.paperScale
            ? std::vector<std::size_t>{20000, 30000, 40000, 60000, 80000, 100000}
            : std::vector<std::size_t>{2000, 3000, 4000, 6000, 8000, 10000};
    const std::vector<double> paperSpeedup{3.69, 3.8, 3.95, 4.19, 4.27, 4.32};

    printHeader("Table 2 / Fig 14: speedup vs number of samples");
    std::printf("12 sequences x 200 bp, %u threads\n\n", cfg.threads);

    const Alignment data = makeDataset(12, 200, 1.0, 42);
    Table table({"# samples", "serial MH (s)", "GMH (s)", "speedup", "paper speedup"});
    for (std::size_t i = 0; i < sweep.size(); ++i) {
        const SpeedupPoint p = measureSpeedup(data, sweep[i], cfg.threads);
        table.addRow({Table::integer(static_cast<long long>(sweep[i])),
                      Table::num(p.baselineSeconds, 3), Table::num(p.gmhSeconds, 3),
                      Table::num(p.speedup(), 2), Table::num(paperSpeedup[i], 2)});
    }
    table.print(std::cout);
    std::printf("\nShape criterion: speedup stays roughly constant (mildly increasing)\n"
                "across the sample sweep, as in Fig 14.\n");
    return 0;
}
