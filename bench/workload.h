// Shared workload synthesis for the benchmark harnesses: the §6.1 data
// pipeline (coalescent tree -> F84 sequences) and the paired
// baseline-vs-GMH timing probe used by the speedup experiments.
#pragma once

#include <cstdio>
#include <string>

#include "coalescent/simulator.h"
#include "core/driver.h"
#include "rng/mt19937.h"
#include "seq/seqgen.h"
#include "seq/subst_model.h"
#include "util/options.h"

namespace mpcgs::bench {

/// Simulated data set for a given shape, mirroring
/// `ms <n> 1 -T | seq-gen -mF84 -l <L> -s <theta>`.
inline Alignment makeDataset(int nSeq, std::size_t length, double theta, unsigned seed) {
    Mt19937 rng(seed);
    const Genealogy truth = simulateCoalescent(nSeq, theta, rng);
    const auto gen = makeF84(2.0, kUniformFreqs);
    return simulateSequences(truth, *gen, {length, 1.0}, rng);
}

/// One speedup measurement: wall time of the sampling phase (E-step) for
/// the serial MH baseline versus the GMH sampler on `threads` workers, both
/// producing the same number of genealogy samples.
struct SpeedupPoint {
    double baselineSeconds = 0.0;
    double gmhSeconds = 0.0;
    double speedup() const { return baselineSeconds / gmhSeconds; }
};

inline SpeedupPoint measureSpeedup(const Alignment& data, std::size_t samples,
                                   unsigned threads, std::uint64_t seed = 11,
                                   std::size_t gmhProposals = 48) {
    MpcgsOptions opts;
    opts.theta0 = 1.0;
    opts.emIterations = 1;
    opts.samplesPerIteration = samples;
    opts.seed = seed;
    opts.gmhProposals = gmhProposals;
    opts.gmhSamplesPerSet = gmhProposals;  // Alg 1: M = N

    SpeedupPoint out;
    opts.strategy = Strategy::SerialMh;
    out.baselineSeconds = estimateTheta(data, opts).samplingSeconds;

    opts.strategy = Strategy::Gmh;
    ThreadPool pool(threads);
    out.gmhSeconds = estimateTheta(data, opts, &pool).samplingSeconds;
    return out;
}

/// Common CLI: benches accept --quick (default) or --paper to choose the
/// sweep scale, plus --threads.
struct BenchConfig {
    bool paperScale = false;
    unsigned threads = hardwareThreads();

    static BenchConfig fromArgs(int argc, const char* const* argv) {
        const Options o = Options::parse(argc, argv);
        BenchConfig c;
        c.paperScale = o.getBool("paper", false);
        c.threads = static_cast<unsigned>(o.getInt("threads", hardwareThreads()));
        return c;
    }
};

inline void printHeader(const std::string& title) {
    std::printf("=== %s ===\n", title.c_str());
}

}  // namespace mpcgs::bench
