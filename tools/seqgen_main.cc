// seqgen — sequence evolution along a Newick tree (the seq-gen substitute,
// §6.1). Reads trees on stdin, writes PHYLIP on stdout.
//
//   seqgen --model F84 --kappa 2.0 --length 200 --scale 1.0 --seed S < trees
//
// mirrors `seq-gen -mF84 -l 200 -s 1.0 < treefile`.
#include <cstdio>
#include <iostream>
#include <string>

#include "phylo/newick.h"
#include "rng/mt19937.h"
#include "seq/phylip.h"
#include "seq/seqgen.h"
#include "seq/subst_model.h"
#include "util/options.h"

int main(int argc, char** argv) {
    using namespace mpcgs;
    const Options opts = Options::parse(argc, argv);
    try {
        const std::string modelName = opts.get("model", "F84");
        const double kappa = opts.getDouble("kappa", 2.0);
        SeqGenOptions so;
        so.length = static_cast<std::size_t>(opts.getInt("length", 200));
        so.scale = opts.getDouble("scale", 1.0);
        Mt19937 rng(static_cast<std::uint32_t>(opts.getInt("seed", 42)));

        // seq-gen draws base frequencies from its defaults when not given
        // data; use uniform frequencies unless overridden.
        const BaseFreqs pi = kUniformFreqs;
        std::unique_ptr<SubstModel> model;
        if (modelName == "F84")
            model = makeF84(kappa, pi);
        else if (modelName == "HKY85")
            model = makeHky85(kappa, pi);
        else if (modelName == "K80")
            model = makeK80(kappa);
        else if (modelName == "JC69")
            model = makeJc69();
        else if (modelName == "F81")
            model = std::make_unique<F81Model>(pi);
        else {
            std::fprintf(stderr, "seqgen: unknown model '%s'\n", modelName.c_str());
            return 2;
        }

        std::string line;
        while (std::getline(std::cin, line)) {
            if (line.find(';') == std::string::npos) continue;
            const Genealogy g = fromNewick(line);
            const Alignment aln = simulateSequences(g, *model, so, rng);
            writePhylip(std::cout, aln);
        }
        return 0;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "seqgen: %s\n", e.what());
        return 1;
    }
}
