// seqgen — sequence evolution along a Newick tree (the seq-gen substitute,
// §6.1). Reads trees on stdin, writes PHYLIP on stdout.
//
//   seqgen --model F84 --kappa 2.0 --length 200 --scale 1.0 --seed S < trees
//
// mirrors `seq-gen -mF84 -l 200 -s 1.0 < treefile`.
//
// Multi-locus mode simulates L independent coalescent loci under one
// shared theta (no input trees; each locus draws its own genealogy):
//
//   seqgen --loci L --tips N --theta T [--length ...] [--out PREFIX]
//
// Per-locus RNG streams are derived via SplitMix64 from --seed, so any
// locus subset is reproducible independently of the others. With --out,
// locus l is written to <PREFIX>locus<l>.phy and a dataset manifest to
// <PREFIX>manifest.txt (ready for `mpcgs --loci-manifest`); without it,
// the alignments are written to stdout back to back.
// Two-deme mode simulates a structured (two-population migration)
// coalescent and writes the alignment plus a pop-map file ready for
// `mpcgs --populations 2 --pop-map`:
//
//   seqgen --demes N1,N2 --thetas T1,T2 --mig M12[,M21] [--length ...]
//          [--out PREFIX]
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "coalescent/simulator.h"
#include "coalescent/structured.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "phylo/newick.h"
#include "rng/mt19937.h"
#include "rng/splitmix.h"
#include "seq/phylip.h"
#include "seq/seqgen.h"
#include "seq/subst_model.h"
#include "core/supervisor.h"
#include "util/build_info.h"
#include "util/error.h"
#include "util/failpoint.h"
#include "util/options.h"

namespace {

std::unique_ptr<mpcgs::SubstModel> makeGeneratorModel(const std::string& name, double kappa,
                                                      const mpcgs::BaseFreqs& pi) {
    using namespace mpcgs;
    if (name == "F84") return makeF84(kappa, pi);
    if (name == "HKY85") return makeHky85(kappa, pi);
    if (name == "K80") return makeK80(kappa);
    if (name == "JC69") return makeJc69();
    if (name == "F81") return std::make_unique<F81Model>(pi);
    return nullptr;
}

/// Parse "a" or "a,b" into exactly `want` doubles (a single value repeats).
std::vector<double> parsePair(const std::string& text, std::size_t want) {
    std::vector<double> out;
    std::istringstream in(text);
    std::string field;
    while (std::getline(in, field, ',')) {
        std::size_t used = 0;
        double v = 0.0;
        try {
            v = std::stod(field, &used);
        } catch (const std::exception&) {
            used = 0;
        }
        if (used != field.size())
            throw mpcgs::ConfigError("seqgen: bad numeric field '" + field + "'");
        out.push_back(v);
    }
    if (out.size() == 1) out.resize(want, out[0]);
    if (out.size() != want)
        throw mpcgs::ConfigError("seqgen: expected " + std::to_string(want) +
                                 " comma-separated values in '" + text + "'");
    return out;
}

/// Two-deme structured workload: one labelled genealogy, sequences evolved
/// on its tree, pop-map emitted next to the alignment.
int runTwoDeme(const mpcgs::Options& opts, const mpcgs::SubstModel& model,
               const mpcgs::SeqGenOptions& so, std::uint64_t seed) {
    using namespace mpcgs;
    const auto counts = parsePair(*opts.get("demes"), 2);
    for (const double c : counts)
        if (!(c >= 1.0) || c != std::floor(c) || c > 1e6) {
            std::fprintf(stderr,
                         "seqgen: --demes needs two positive integer tip counts\n");
            return 2;
        }
    const int n1 = static_cast<int>(counts[0]);
    const int n2 = static_cast<int>(counts[1]);
    const auto thetas = parsePair(opts.get("thetas", opts.get("theta", "1.0")), 2);
    const auto migs = parsePair(opts.get("mig", "1.0"), 2);
    MigrationModel m(2, 1.0, 1.0);
    m.theta = thetas;
    m.setRate(0, 1, migs[0]);
    m.setRate(1, 0, migs[1]);
    m.validate();

    std::vector<int> demes;
    std::vector<std::string> names;
    for (int i = 0; i < n1 + n2; ++i) {
        demes.push_back(i < n1 ? 0 : 1);
        names.push_back((i < n1 ? "p1s" : "p2s") + std::to_string(i < n1 ? i + 1 : i - n1 + 1));
    }

    Mt19937 rng = Mt19937::fromSplitMix(splitMix64At(seed, 2));
    StructuredGenealogy g = simulateStructuredCoalescent(demes, m, rng);
    g.tree().setTipNames(names);
    const Alignment aln = simulateSequences(g.tree(), model, so, rng);

    if (const auto prefix = opts.get("out")) {
        const std::string alnFile = *prefix + "twodeme.phy";
        const std::string popFile = *prefix + "popmap.txt";
        writePhylipFile(alnFile, aln);
        std::ofstream pop(popFile);
        if (!pop) {
            std::fprintf(stderr, "seqgen: cannot write pop-map at prefix '%s'\n",
                         prefix->c_str());
            return 1;
        }
        pop << "# two-deme simulation: theta=(" << m.theta[0] << ',' << m.theta[1]
            << ") M=(" << m.rate(0, 1) << ',' << m.rate(1, 0) << ") seed=" << seed
            << " migrations=" << g.migrationCount() << '\n';
        for (std::size_t i = 0; i < names.size(); ++i)
            pop << names[i] << ' ' << (demes[i] == 0 ? "pop1" : "pop2") << '\n';
        std::fprintf(stderr,
                     "seqgen: wrote %d+%d two-deme sequences to %s, pop-map to %s "
                     "(%zu migration events on the true genealogy)\n",
                     n1, n2, alnFile.c_str(), popFile.c_str(), g.migrationCount());
    } else {
        writePhylip(std::cout, aln);
        std::fprintf(stderr,
                     "seqgen: two-deme alignment on stdout; use --out PREFIX to also "
                     "write the pop-map file\n");
    }
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    using namespace mpcgs;
    const Options opts = Options::parse(argc, argv);
    if (opts.has("print-config")) {
        std::fputs(buildConfigSummary().c_str(), stdout);
        return 0;
    }
    try {
        failpoint::configureFromEnv();
        // Shared observability surface (src/obs/): same flags, taxonomy and
        // obs.emit fault semantics as mpcgs, emitted on clean exit.
        const auto metricsOut = opts.get("metrics-out");
        const auto traceOut = opts.get("trace-out");
        std::unique_ptr<obs::TraceRecorder> traceRec;
        if (metricsOut || traceOut) obs::arm();
        if (traceOut) {
            traceRec = std::make_unique<obs::TraceRecorder>();
            obs::armTrace(traceRec.get());
        }
        const auto finishObs = [&](int rc) {
            if (traceRec) obs::armTrace(nullptr);
            if (metricsOut) obs::writeMetricsFile(*metricsOut);
            if (traceOut) traceRec->writeFile(*traceOut);
            return rc;
        };
        const std::string modelName = opts.get("model", "F84");
        const double kappa = opts.getDouble("kappa", 2.0);
        SeqGenOptions so;
        so.length = static_cast<std::size_t>(opts.getInt("length", 200));
        so.scale = opts.getDouble("scale", 1.0);
        const auto seed = static_cast<std::uint64_t>(opts.getInt("seed", 42));

        // seq-gen draws base frequencies from its defaults when not given
        // data; use uniform frequencies unless overridden.
        const BaseFreqs pi = kUniformFreqs;
        const auto model = makeGeneratorModel(modelName, kappa, pi);
        if (!model) {
            std::fprintf(stderr, "seqgen: unknown model '%s'\n", modelName.c_str());
            return 2;
        }

        if (opts.has("demes")) return finishObs(runTwoDeme(opts, *model, so, seed));

        const auto loci = static_cast<std::size_t>(opts.getInt("loci", 0));
        if (loci > 0) {
            const int tips = static_cast<int>(opts.getInt("tips", 0));
            const double theta = opts.getDouble("theta", 0.0);
            if (tips < 2 || theta <= 0.0) {
                std::fprintf(stderr,
                             "seqgen: --loci needs --tips >= 2 and --theta > 0\n");
                return 2;
            }
            const auto prefix = opts.get("out");
            std::ofstream manifest;
            if (prefix) {
                manifest.open(*prefix + "manifest.txt");
                if (!manifest) {
                    std::fprintf(stderr, "seqgen: cannot write manifest at prefix '%s'\n",
                                 prefix->c_str());
                    return 1;
                }
                manifest << "# " << loci << " loci simulated under shared theta=" << theta
                         << " (seqgen --loci)\n";
            }
            for (std::size_t l = 0; l < loci; ++l) {
                // Independent, counter-addressable stream per locus: locus
                // l's data does not depend on how many loci are simulated.
                Mt19937 rng = Mt19937::fromSplitMix(splitMix64At(seed, l));
                const Genealogy g = simulateCoalescent(tips, theta, rng);
                const Alignment aln = simulateSequences(g, *model, so, rng);
                if (prefix) {
                    const std::string name = "locus" + std::to_string(l);
                    const std::string file = *prefix + name + ".phy";
                    writePhylipFile(file, aln);
                    // Manifest entries are relative to the manifest's own
                    // directory, which the locus files share by construction.
                    manifest << std::filesystem::path(file).filename().string()
                             << " name=" << name << " rate=1.0\n";
                } else {
                    writePhylip(std::cout, aln);
                }
            }
            if (prefix)
                std::fprintf(stderr, "seqgen: wrote %zu loci + manifest at prefix '%s'\n",
                             loci, prefix->c_str());
            return finishObs(0);
        }

        Mt19937 rng(static_cast<std::uint32_t>(seed));
        std::string line;
        while (std::getline(std::cin, line)) {
            if (line.find(';') == std::string::npos) continue;
            const Genealogy g = fromNewick(line);
            const Alignment aln = simulateSequences(g, *model, so, rng);
            writePhylip(std::cout, aln);
        }
        return finishObs(0);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "seqgen: %s\n", e.what());
        return exitCodeFor(e);
    }
}
