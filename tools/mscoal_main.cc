// mscoal — Kingman coalescent tree simulator (the `ms` substitute, §6.1).
//
//   mscoal <nTips> [--theta T] [--seed S] [--reps R]
//
// Prints one Newick tree per replicate, like `ms <n> <R> -T`.
#include <cstdio>
#include <iostream>

#include "coalescent/simulator.h"
#include "core/supervisor.h"
#include "phylo/newick.h"
#include "rng/mt19937.h"
#include "util/build_info.h"
#include "util/failpoint.h"
#include "util/options.h"

int main(int argc, char** argv) {
    using namespace mpcgs;
    const Options opts = Options::parse(argc, argv);
    if (opts.has("print-config")) {
        std::fputs(buildConfigSummary().c_str(), stdout);
        return 0;
    }
    if (opts.positional().empty()) {
        std::fprintf(stderr, "usage: %s <nTips> [--theta T] [--seed S] [--reps R]\n", argv[0]);
        return 2;
    }
    try {
        failpoint::configureFromEnv();
        const int n = std::stoi(opts.positional()[0]);
        const double theta = opts.getDouble("theta", 1.0);
        const auto reps = opts.getInt("reps", 1);
        Mt19937 rng(static_cast<std::uint32_t>(opts.getInt("seed", 42)));
        for (long long r = 0; r < reps; ++r) {
            const Genealogy g = simulateCoalescent(n, theta, rng);
            std::cout << toNewick(g) << "\n";
        }
        return 0;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "mscoal: %s\n", e.what());
        return exitCodeFor(e);
    }
}
