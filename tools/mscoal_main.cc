// mscoal — Kingman coalescent tree simulator (the `ms` substitute, §6.1).
//
//   mscoal <nTips> [--theta T] [--seed S] [--reps R]
//
// Prints one Newick tree per replicate, like `ms <n> <R> -T`.
#include <cstdio>
#include <iostream>
#include <memory>

#include "coalescent/simulator.h"
#include "core/supervisor.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "phylo/newick.h"
#include "rng/mt19937.h"
#include "util/build_info.h"
#include "util/failpoint.h"
#include "util/options.h"

int main(int argc, char** argv) {
    using namespace mpcgs;
    const Options opts = Options::parse(argc, argv);
    if (opts.has("print-config")) {
        std::fputs(buildConfigSummary().c_str(), stdout);
        return 0;
    }
    if (opts.positional().empty()) {
        std::fprintf(stderr,
                     "usage: %s <nTips> [--theta T] [--seed S] [--reps R]\n"
                     "       [--metrics-out FILE] [--trace-out FILE]\n",
                     argv[0]);
        return 2;
    }
    try {
        failpoint::configureFromEnv();
        // Shared observability surface (src/obs/): same flags, taxonomy and
        // obs.emit fault semantics as mpcgs, emitted on clean exit.
        const auto metricsOut = opts.get("metrics-out");
        const auto traceOut = opts.get("trace-out");
        std::unique_ptr<obs::TraceRecorder> traceRec;
        if (metricsOut || traceOut) obs::arm();
        if (traceOut) {
            traceRec = std::make_unique<obs::TraceRecorder>();
            obs::armTrace(traceRec.get());
        }
        const int n = std::stoi(opts.positional()[0]);
        const double theta = opts.getDouble("theta", 1.0);
        const auto reps = opts.getInt("reps", 1);
        Mt19937 rng(static_cast<std::uint32_t>(opts.getInt("seed", 42)));
        {
            const obs::TraceSpan span("mscoal_simulate", "sim");
            for (long long r = 0; r < reps; ++r) {
                const Genealogy g = simulateCoalescent(n, theta, rng);
                std::cout << toNewick(g) << "\n";
            }
        }
        if (traceRec) obs::armTrace(nullptr);
        if (metricsOut) obs::writeMetricsFile(*metricsOut);
        if (traceOut) traceRec->writeFile(*traceOut);
        return 0;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "mscoal: %s\n", e.what());
        return exitCodeFor(e);
    }
}
