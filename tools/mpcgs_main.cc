// mpcgs — multi-proposal coalescent genealogy sampler (§5.1.1).
//
// Usage mirrors the paper's proof of concept:
//   mpcgs <seqdata.phy> <init_theta> [--threads N] [--strategy gmh|mh|multichain]
//         [--samples M] [--em K] [--proposals N] [--seed S] [--curve out.csv]
#include <cstdio>
#include <fstream>
#include <iostream>

#include "core/driver.h"
#include "core/support_interval.h"
#include "seq/nexus.h"
#include "seq/phylip.h"
#include "util/options.h"
#include "util/timer.h"

namespace {

void usage(const char* prog) {
    std::fprintf(stderr,
                 "usage: %s <seqdata.phy> <init_theta> [options]\n"
                 "  --threads N        worker threads (default: hardware)\n"
                 "  --strategy S       gmh | mh | multichain | heated (default gmh)\n"
                 "  --cached-baseline  use dirty-path likelihood caching for --strategy mh\n"
                 "  --samples M        genealogy samples per EM iteration (default 4000)\n"
                 "  --em K             EM iterations (default 4)\n"
                 "  --proposals N      GMH proposals per set (default 32)\n"
                 "  --set-samples M    GMH samples per proposal set (default 8)\n"
                 "  --chains P         chains for multichain strategy (default 4)\n"
                 "  --model NAME       inference model: F81 (default), JC69, HKY85, F84\n"
                 "  --seed S           RNG seed\n"
                 "  --curve FILE       write the final likelihood curve as CSV\n"
                 "  --stop-rhat R      stop an E-step early once cross-chain R-hat < R\n"
                 "                     (e.g. 1.01; 0 disables)\n"
                 "  --stop-ess N       ... and pooled effective sample size >= N\n"
                 "  --checkpoint FILE  write restart snapshots to FILE during sampling\n"
                 "  --checkpoint-interval T  ticks between snapshots (default: auto)\n"
                 "  --resume           continue from the snapshot at --checkpoint FILE\n",
                 prog);
}

}  // namespace

int main(int argc, char** argv) {
    using namespace mpcgs;
    const Options opts = Options::parse(argc, argv);
    if (opts.positional().size() < 2) {
        usage(argv[0]);
        return 2;
    }

    try {
        const std::string& path = opts.positional()[0];
        const bool isNexus = path.size() > 4 && (path.substr(path.size() - 4) == ".nex" ||
                                                 path.substr(path.size() - 4) == ".nxs");
        const Alignment aln = isNexus ? readNexusFile(path) : readPhylipFile(path);
        MpcgsOptions mo;
        mo.theta0 = std::stod(opts.positional()[1]);
        mo.samplesPerIteration = static_cast<std::size_t>(opts.getInt("samples", 4000));
        mo.emIterations = static_cast<std::size_t>(opts.getInt("em", 4));
        mo.gmhProposals = static_cast<std::size_t>(opts.getInt("proposals", 32));
        mo.gmhSamplesPerSet = static_cast<std::size_t>(opts.getInt("set-samples", 8));
        mo.chains = static_cast<std::size_t>(opts.getInt("chains", 4));
        mo.seed = static_cast<std::uint64_t>(opts.getInt("seed", 20160408));
        mo.substModel = opts.get("model", "F81");

        const std::string strat = opts.get("strategy", "gmh");
        if (strat == "gmh")
            mo.strategy = Strategy::Gmh;
        else if (strat == "mh")
            mo.strategy = Strategy::SerialMh;
        else if (strat == "multichain")
            mo.strategy = Strategy::MultiChain;
        else if (strat == "heated")
            mo.strategy = Strategy::HeatedMh;
        else {
            std::fprintf(stderr, "unknown strategy '%s'\n", strat.c_str());
            return 2;
        }
        mo.cachedBaseline = opts.getBool("cached-baseline", false);

        mo.stopRhat = opts.getDouble("stop-rhat", 0.0);
        mo.stopEss = opts.getDouble("stop-ess", 0.0);
        mo.checkpointPath = opts.get("checkpoint", "");
        mo.checkpointIntervalTicks =
            static_cast<std::size_t>(opts.getInt("checkpoint-interval", 0));
        mo.resume = opts.getBool("resume", false);

        const unsigned threads =
            static_cast<unsigned>(opts.getInt("threads", hardwareThreads()));
        ThreadPool pool(threads);

        std::printf("mpcgs: %zu sequences x %zu bp, theta0=%.4g, strategy=%s, threads=%u\n",
                    aln.sequenceCount(), aln.length(), mo.theta0, strat.c_str(), threads);

        const MpcgsResult res = estimateTheta(aln, mo, &pool);

        for (std::size_t i = 0; i < res.history.size(); ++i) {
            const auto& h = res.history[i];
            std::printf("  EM %zu: theta %.5g -> %.5g  (logL %.4g, %zu samples, "
                        "move rate %.2f, %s)%s\n",
                        i + 1, h.thetaBefore, h.thetaAfter, h.logLAtMax, h.samples,
                        h.moveRate, formatDuration(h.seconds).c_str(),
                        h.stoppedEarly ? "  [converged early]" : "");
            if (h.rhat > 0.0)
                std::printf("        convergence: R-hat %.4f, pooled ESS %.0f\n", h.rhat,
                            h.ess);
        }
        std::printf("final theta estimate: %.6g  (total %s, sampling %s)\n", res.theta,
                    formatDuration(res.totalSeconds).c_str(),
                    formatDuration(res.samplingSeconds).c_str());

        // Approximate 95% support interval from the final likelihood curve.
        if (!res.finalSummaries.empty()) {
            const RelativeLikelihood rl(res.finalSummaries, res.finalDrivingTheta);
            const SupportInterval si = supportInterval(rl, res.theta, 1.92, 1e4, &pool);
            std::printf("approx. 95%% support interval: [%.6g, %.6g]%s\n", si.lower, si.upper,
                        (si.lowerBounded && si.upperBounded) ? "" : " (open-ended)");
        }

        if (const auto curveFile = opts.get("curve")) {
            const RelativeLikelihood rl(res.finalSummaries, res.finalDrivingTheta);
            std::ofstream f(*curveFile);
            f << "theta,logL\n";
            for (const auto& [theta, ll] : rl.curve(res.theta / 20, res.theta * 20, 81, &pool))
                f << theta << ',' << ll << '\n';
            std::printf("likelihood curve written to %s\n", curveFile->c_str());
        }
        return 0;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "mpcgs: %s\n", e.what());
        return 1;
    }
}
