// mpcgs — multi-proposal coalescent genealogy sampler (§5.1.1), extended
// to multi-locus datasets sharing theta.
//
// Usage mirrors the paper's proof of concept:
//   mpcgs <seqdata.phy> [<more-loci...>] <init_theta> [--loci-manifest M]
//         [--threads N] [--strategy gmh|mh|multichain|heated]
//         [--samples M] [--em K] [--proposals N] [--seed S] [--curve out.csv]
#include <cstdio>
#include <fstream>
#include <iostream>

#include "core/driver.h"
#include "core/support_interval.h"
#include "seq/dataset.h"
#include "util/options.h"
#include "util/timer.h"

namespace {

void usage(const char* prog) {
    std::fprintf(stderr,
                 "usage: %s <seqdata...> <init_theta> [options]\n"
                 "  every positional argument but the last is a locus file\n"
                 "  (.phy | .nex/.nxs | .fa/.fasta); loci share one theta\n"
                 "  --loci-manifest F  read loci from a manifest file instead/as well:\n"
                 "                     one '<file> [name=N] [rate=R]' per line\n"
                 "  --threads N        worker threads (default: hardware)\n"
                 "  --strategy S       gmh | mh | multichain | heated (default gmh)\n"
                 "  --cached-baseline  use dirty-path likelihood caching for --strategy mh\n"
                 "  --samples M        genealogy samples per locus per EM iteration"
                 " (default 4000)\n"
                 "  --em K             EM iterations (default 4)\n"
                 "  --proposals N      GMH proposals per set (default 32)\n"
                 "  --set-samples M    GMH samples per proposal set (default 8)\n"
                 "  --chains P         chains for multichain strategy (default 4)\n"
                 "  --model NAME       inference model: F81 (default), JC69, HKY85, F84\n"
                 "  --seed S           RNG seed\n"
                 "  --curve FILE       write the final pooled likelihood curve as CSV\n"
                 "  --stop-rhat R      stop an E-step early once every locus's cross-chain\n"
                 "                     R-hat < R (e.g. 1.01; 0 disables)\n"
                 "  --stop-ess N       ... and pooled effective sample size >= N\n"
                 "  --checkpoint FILE  write restart snapshots to FILE during sampling\n"
                 "  --checkpoint-interval T  ticks between snapshots (default: auto)\n"
                 "  --resume           continue from the snapshot at --checkpoint FILE\n",
                 prog);
}

}  // namespace

int main(int argc, char** argv) {
    using namespace mpcgs;
    const Options opts = Options::parse(argc, argv);
    const bool haveManifest = opts.has("loci-manifest");
    // Without a manifest at least one locus file plus theta0 is required;
    // with one, theta0 alone suffices.
    if (opts.positional().size() < (haveManifest ? 1u : 2u)) {
        usage(argv[0]);
        return 2;
    }

    try {
        MpcgsOptions mo;
        mo.theta0 = std::stod(opts.positional().back());
        mo.samplesPerIteration = static_cast<std::size_t>(opts.getInt("samples", 4000));
        mo.emIterations = static_cast<std::size_t>(opts.getInt("em", 4));
        mo.gmhProposals = static_cast<std::size_t>(opts.getInt("proposals", 32));
        mo.gmhSamplesPerSet = static_cast<std::size_t>(opts.getInt("set-samples", 8));
        mo.chains = static_cast<std::size_t>(opts.getInt("chains", 4));
        mo.seed = static_cast<std::uint64_t>(opts.getInt("seed", 20160408));
        mo.substModel = opts.get("model", "F81");

        const std::string strat = opts.get("strategy", "gmh");
        if (strat == "gmh")
            mo.strategy = Strategy::Gmh;
        else if (strat == "mh")
            mo.strategy = Strategy::SerialMh;
        else if (strat == "multichain")
            mo.strategy = Strategy::MultiChain;
        else if (strat == "heated")
            mo.strategy = Strategy::HeatedMh;
        else {
            std::fprintf(stderr, "unknown strategy '%s'\n", strat.c_str());
            return 2;
        }
        mo.cachedBaseline = opts.getBool("cached-baseline", false);

        mo.stopRhat = opts.getDouble("stop-rhat", 0.0);
        mo.stopEss = opts.getDouble("stop-ess", 0.0);
        mo.checkpointPath = opts.get("checkpoint", "");
        mo.checkpointIntervalTicks =
            static_cast<std::size_t>(opts.getInt("checkpoint-interval", 0));
        mo.resume = opts.getBool("resume", false);

        // Reject nonsense at parse time, before any data is read.
        validateOptions(mo);

        // Manifest loci first (their rates/names are explicit), then the
        // positional files — whose derived names dedupe against the
        // manifest's the same way colliding file stems do.
        Dataset ds;
        if (haveManifest) ds = Dataset::fromManifest(*opts.get("loci-manifest"));
        const std::vector<std::string> files(opts.positional().begin(),
                                             opts.positional().end() - 1);
        if (!files.empty()) {
            const Dataset extra = Dataset::fromFiles(files);
            for (const Locus& locus : extra.loci()) {
                Locus merged = locus;
                const auto taken = [&](const std::string& n) {
                    for (const Locus& existing : ds.loci())
                        if (existing.name == n) return true;
                    return false;
                };
                for (int n = 2; taken(merged.name); ++n)
                    merged.name = locus.name + "." + std::to_string(n);
                ds.add(std::move(merged));
            }
        }
        ds.validate();

        const unsigned threads =
            static_cast<unsigned>(opts.getInt("threads", hardwareThreads()));
        ThreadPool pool(threads);

        std::printf("mpcgs: %zu loci, %zu total sites, theta0=%.4g, strategy=%s, threads=%u\n",
                    ds.locusCount(), ds.totalSites(), mo.theta0, strat.c_str(), threads);
        for (const Locus& locus : ds.loci()) {
            const std::string rate =
                locus.mutationScale == 1.0
                    ? ""
                    : "  (rate " + std::to_string(locus.mutationScale) + ")";
            std::printf("  locus %-16s %zu sequences x %zu bp%s\n", locus.name.c_str(),
                        locus.alignment.sequenceCount(), locus.alignment.length(),
                        rate.c_str());
        }

        const MpcgsResult res = estimateTheta(ds, mo, &pool);

        for (std::size_t i = 0; i < res.history.size(); ++i) {
            const auto& h = res.history[i];
            std::printf("  EM %zu: theta %.5g -> %.5g  (logL %.4g, %zu samples, "
                        "move rate %.2f, %s)%s\n",
                        i + 1, h.thetaBefore, h.thetaAfter, h.logLAtMax, h.samples,
                        h.moveRate, formatDuration(h.seconds).c_str(),
                        h.stoppedEarly ? "  [converged early]" : "");
            if (h.rhat > 0.0)
                std::printf("        convergence: worst R-hat %.4f, min pooled ESS %.0f\n",
                            h.rhat, h.ess);
        }
        std::printf("final theta estimate: %.6g  (total %s, sampling %s)\n", res.theta,
                    formatDuration(res.totalSeconds).c_str(),
                    formatDuration(res.samplingSeconds).c_str());

        // Approximate 95% support interval from the final pooled curve.
        if (!res.finalSummaries.empty()) {
            const PooledRelativeLikelihood rl = finalPooledLikelihood(res);
            const SupportInterval si = supportInterval(rl, res.theta, 1.92, 1e4, &pool);
            std::printf("approx. 95%% support interval: [%.6g, %.6g]%s\n", si.lower, si.upper,
                        (si.lowerBounded && si.upperBounded) ? "" : " (open-ended)");
        }

        if (const auto curveFile = opts.get("curve")) {
            const PooledRelativeLikelihood rl = finalPooledLikelihood(res);
            std::ofstream f(*curveFile);
            f << "theta,logL\n";
            for (const auto& [theta, ll] : rl.curve(res.theta / 20, res.theta * 20, 81, &pool))
                f << theta << ',' << ll << '\n';
            std::printf("pooled likelihood curve written to %s\n", curveFile->c_str());
        }
        return 0;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "mpcgs: %s\n", e.what());
        return 1;
    }
}
