// mpcgs — multi-proposal coalescent genealogy sampler (§5.1.1), extended
// to multi-locus datasets sharing theta and to the two-population
// structured coalescent (per-deme thetas + migration rates).
//
// Usage mirrors the paper's proof of concept:
//   mpcgs <seqdata.phy> [<more-loci...>] <init_theta> [--loci-manifest M]
//         [--threads N] [--strategy gmh|mh|multichain|heated]
//         [--samples M] [--em K] [--proposals N] [--seed S] [--curve out.csv]
//         [--populations K --pop-map F]
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>

#include "core/driver.h"
#include "core/smc_estimator.h"
#include "core/structured_estimator.h"
#include "core/supervisor.h"
#include "core/support_interval.h"
#include "mcmc/checkpoint.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "seq/dataset.h"
#include "serve/json_mini.h"
#include "serve/serve.h"
#include "serve/trace_sink.h"
#include "util/build_info.h"
#include "util/failpoint.h"
#include "util/options.h"
#include "util/timer.h"

namespace {

void usage(const char* prog) {
    std::fprintf(stderr,
                 "usage: %s <seqdata...> <init_theta> [options]\n"
                 "  every positional argument but the last is a locus file\n"
                 "  (.phy | .nex/.nxs | .fa/.fasta); loci share one theta\n"
                 "  --loci-manifest F  read loci from a manifest file instead/as well:\n"
                 "                     one '<file> [name=N] [rate=R] [pop=F]' per line\n"
                 "  --threads N        worker threads (default: hardware)\n"
                 "  --algo A           mcmc (default) | smc | pmmh\n"
                 "  --strategy S       gmh | mh | multichain | heated (default gmh,\n"
                 "                     mcmc algo only)\n"
                 "  --cached-baseline  use dirty-path likelihood caching for --strategy mh\n"
                 "  --samples M        genealogy samples per locus per EM iteration"
                 " (default 4000)\n"
                 "  --em K             EM iterations (default 4)\n"
                 "  --proposals N      GMH proposals per set (default 32)\n"
                 "  --set-samples M    GMH samples per proposal set (default 8)\n"
                 "  --chains P         chains for multichain strategy (default 4)\n"
                 "  --model NAME       inference model: F81 (default), JC69, HKY85, F84\n"
                 "  --seed S           RNG seed\n"
                 "  --curve FILE       write the final pooled likelihood curve as CSV\n"
                 "  --stop-rhat R      stop an E-step early once every locus's cross-chain\n"
                 "                     R-hat < R (e.g. 1.01; 0 disables)\n"
                 "  --stop-ess N       ... and pooled effective sample size >= N\n"
                 "  --checkpoint FILE  write restart snapshots to FILE during sampling\n"
                 "  --checkpoint-interval T  ticks between snapshots (default: auto)\n"
                 "  --resume           continue from the snapshot at --checkpoint FILE\n"
                 "                     (an unreadable snapshot falls back to a fresh run)\n"
                 "  --resume-policy P  strict | fallback (default): strict exits with code 4\n"
                 "                     instead of restarting when the snapshot is unreadable\n"
                 "  --max-wall-time S  checkpoint and stop cleanly (exit 3) after S seconds\n"
                 "  --failpoints SPEC  arm fault-injection points, e.g.\n"
                 "                     'checkpoint.fsync=once:errno=ENOSPC;mcmc.logpost=after(3)'\n"
                 "                     (also read from $MPCGS_FAILPOINTS)\n"
                 "  --metrics-out FILE write a flat JSON metrics snapshot (pool.* lik.*\n"
                 "                     mcmc.* smc.* serve.* taxonomy) on clean exit;\n"
                 "                     arms the registry (never perturbs any RNG stream)\n"
                 "  --trace-out FILE   record phase spans (EM iterations, SMC generations,\n"
                 "                     pool launches, serve jobs) and write Chrome\n"
                 "                     trace_event JSON on clean exit (chrome://tracing)\n"
                 "  --print-config     print build type, SIMD width, git describe, the\n"
                 "                     thread default and the likelihood backends, then\n"
                 "                     exit\n"
                 "exit codes: 0 ok, 1 error, 2 usage, 3 interrupted (checkpointed),\n"
                 "            4 resume failed (strict), 5 numeric fault, 6 checkpoint I/O\n"
                 "sequential Monte Carlo (--algo smc|pmmh):\n"
                 "  --particles N      particles per cloud (default 1024 smc, 256 pmmh)\n"
                 "  --resampling R     multinomial | stratified | systematic (default) |\n"
                 "                     residual\n"
                 "  --ess-threshold F  resample when ESS < F * particles (default 0.5)\n"
                 "  --lik-backend B    likelihood execution backend: batched (default) |\n"
                 "                     arena; scheduling only — samples and logZ are\n"
                 "                     bitwise identical across backends\n"
                 "  --pmmh-sigma S     log-normal random-walk sd over theta (default 0.4)\n"
                 "                     (pmmh reuses --samples, --chains, --stop-*,\n"
                 "                     --checkpoint/--resume)\n"
                 "structured (two-population migration) mode:\n"
                 "  --populations K    infer per-deme thetas + migration rates (K = 2)\n"
                 "  --pop-map F        per-sequence population file: '<seq> <pop>' lines\n"
                 "                     (or assign via the manifest's pop= column)\n"
                 "  --mig-init M       initial migration rate guess (default 1.0)\n"
                 "  --path-refresh P   labels-only move share of proposals (default 0.25)\n"
                 "online inference & serving (subcommands):\n"
                 "  %s online-init <seqdata> <theta> --state FILE\n"
                 "                     run one SMC pass over the data and save the warm\n"
                 "                     posterior to FILE (--particles/--resampling/\n"
                 "                     --ess-threshold/--lik-backend/--model/--seed apply)\n"
                 "  %s serve --state FILE (--socket PATH | --port P [--host H])\n"
                 "                     serve newline-delimited JSON jobs (add_sequence |\n"
                 "                     estimate | logz | metrics | snapshot | shutdown)\n"
                 "                     against the warm posterior; checkpoints FILE after\n"
                 "                     every update\n"
                 "                     [--ess-threshold F] [--rejuvenation-sweeps K]\n"
                 "                     [--trace FILE] [--threads N] [--max-wall-time S]\n"
                 "  %s serve-send (--socket PATH | --port P [--host H]) '<json>'...\n"
                 "                     send job lines to a running daemon ('-' reads\n"
                 "                     stdin) and print the replies\n",
                 prog, prog, prog, prog);
}

/// --resume against a missing/corrupt snapshot falls back to a fresh run
/// with a clear message instead of dying (the snapshot may have been
/// truncated by a crash or copied half-way — exactly when a restart
/// matters most). The drivers raise ResumeError for unreadable snapshots
/// at ANY payload depth, so deep truncation falls back too; incompatible
/// -but-readable snapshots (ConfigError) and mid-run WRITE failures still
/// fail loudly — silently discarding a healthy snapshot would be worse
/// than stopping.
template <class Run>
auto withResumeFallback(bool& resumeFlag, bool strict, Run&& run) {
    try {
        return run();
    } catch (const mpcgs::ResumeError& e) {
        // --resume-policy strict: an unreadable snapshot is fatal (exit 4)
        // instead of silently costing the whole run again.
        if (!resumeFlag || strict) throw;
        std::fprintf(stderr, "mpcgs: cannot resume — %s; starting fresh\n", e.what());
        resumeFlag = false;
        return run();
    }
}

bool strictResumePolicy(const mpcgs::Options& opts) {
    const std::string policy = opts.get("resume-policy", "fallback");
    if (policy != "strict" && policy != "fallback")
        throw mpcgs::ConfigError("unknown --resume-policy '" + policy +
                                 "' (expected strict|fallback)");
    return policy == "strict";
}

/// The structured (two-population) pipeline: locus 0's alignment with its
/// per-sequence deme assignment, EM over (theta_1, theta_2, M_12, M_21).
int runStructured(const mpcgs::Dataset& ds, const mpcgs::Options& opts, double theta0,
                  mpcgs::ThreadPool& pool, unsigned threads,
                  const mpcgs::RunSupervisor* supervisor) {
    using namespace mpcgs;
    const long long populations = opts.getInt("populations", 0);
    if (populations != 2) {
        std::fprintf(stderr, "mpcgs: --populations currently supports exactly 2 demes\n");
        return 2;
    }
    // Flags that don't apply to structured mode were already hard-rejected
    // by validateAlgoFlags in main().
    if (ds.locusCount() != 1) {
        std::fprintf(stderr,
                     "mpcgs: structured mode currently analyzes a single locus "
                     "(%zu given)\n",
                     ds.locusCount());
        return 2;
    }
    const Locus& locus = ds.locus(0);
    if (locus.populations.empty()) {
        std::fprintf(stderr,
                     "mpcgs: structured mode needs per-sequence population "
                     "assignments; pass --pop-map or a manifest pop= column\n");
        return 2;
    }
    if (ds.populationCount() != 2) {
        std::fprintf(stderr, "mpcgs: pop-map assigns %d populations, need exactly 2\n",
                     ds.populationCount());
        return 2;
    }

    StructuredOptions so;
    so.init = MigrationModel(2, theta0, opts.getDouble("mig-init", 1.0));
    so.emIterations = static_cast<std::size_t>(opts.getInt("em", 4));
    so.samplesPerIteration = static_cast<std::size_t>(opts.getInt("samples", 4000));
    so.chains = static_cast<std::size_t>(opts.getInt("chains", 4));
    so.pathRefreshProb = opts.getDouble("path-refresh", 0.25);
    so.seed = static_cast<std::uint64_t>(opts.getInt("seed", 20160408));
    so.substModel = opts.get("model", "F81");
    so.stopRhat = opts.getDouble("stop-rhat", 0.0);
    so.stopEss = opts.getDouble("stop-ess", 0.0);
    so.checkpointPath = opts.get("checkpoint", "");
    so.checkpointIntervalTicks =
        static_cast<std::size_t>(opts.getInt("checkpoint-interval", 0));
    so.resume = opts.getBool("resume", false);
    so.supervisor = supervisor;
    validateStructuredOptions(so);

    int inDeme0 = 0;
    for (const int d : locus.populations) inDeme0 += d == 0 ? 1 : 0;
    std::printf("mpcgs structured: locus %s, %zu sequences x %zu bp, demes %s=%d %s=%zu, "
                "theta0=%.4g, threads=%u\n",
                locus.name.c_str(), locus.alignment.sequenceCount(),
                locus.alignment.length(), ds.populationNames()[0].c_str(), inDeme0,
                ds.populationNames()[1].c_str(), locus.populations.size() - inDeme0,
                theta0, threads);

    const StructuredResult res = withResumeFallback(so.resume, strictResumePolicy(opts), [&] {
        return estimateStructured(locus.alignment, locus.populations, so, &pool);
    });

    for (std::size_t i = 0; i < res.history.size(); ++i) {
        const auto& h = res.history[i];
        std::printf("  EM %zu: (th1 %.4g, th2 %.4g, M12 %.4g, M21 %.4g) -> "
                    "(th1 %.4g, th2 %.4g, M12 %.4g, M21 %.4g)\n"
                    "        logL %.4g, %zu samples, move rate %.2f, %s%s\n",
                    i + 1, h.before.theta[0], h.before.theta[1], h.before.rate(0, 1),
                    h.before.rate(1, 0), h.after.theta[0], h.after.theta[1],
                    h.after.rate(0, 1), h.after.rate(1, 0), h.logLAtMax, h.samples,
                    h.moveRate, formatDuration(h.seconds).c_str(),
                    h.stoppedEarly ? "  [converged early]" : "");
        if (h.rhat > 0.0)
            std::printf("        convergence: R-hat %.4f, pooled ESS %.0f\n", h.rhat, h.ess);
    }
    std::printf("final structured estimate (total %s, sampling %s):\n",
                formatDuration(res.totalSeconds).c_str(),
                formatDuration(res.samplingSeconds).c_str());
    for (int c = 0; c < structuredCoordinateCount(2); ++c) {
        const auto& si = res.support[static_cast<std::size_t>(c)];
        std::printf("  %-8s %.6g   approx. 95%% support [%.6g, %.6g]%s\n",
                    structuredCoordinateName(2, c).c_str(),
                    getStructuredCoordinate(res.estimate, c), si.lower, si.upper,
                    (si.lowerBounded && si.upperBounded) ? "" : " (open-ended)");
    }
    return 0;
}

/// End-of-run likelihood-backend summary from the metrics registry
/// (lik.* taxonomy; --metrics-out / --trace-out arm it). requested vs
/// computed is the transition-matrix dedup the batched backend's
/// sort+unique sharing buys over per-particle exponentiation.
void printLikSummary() {
    using namespace mpcgs;
    if (!obs::armed()) return;
    const obs::MetricsSnapshot snap = obs::snapshot();
    const auto requested = snap.counter(obs::Counter::LikMatricesRequested);
    const auto computed = snap.counter(obs::Counter::LikMatricesComputed);
    const double dedup =
        requested == 0
            ? 0.0
            : 100.0 * (1.0 - static_cast<double>(computed) / static_cast<double>(requested));
    std::printf("likelihood backend: %llu flushes, %llu combine ops, %llu of %llu "
                "transition matrices computed (dedup saved %.1f%%)\n",
                static_cast<unsigned long long>(snap.counter(obs::Counter::LikFlushes)),
                static_cast<unsigned long long>(snap.counter(obs::Counter::LikCombineOps)),
                static_cast<unsigned long long>(computed),
                static_cast<unsigned long long>(requested), dedup);
}

/// --algo smc: maximize the pooled SMC marginal likelihood log Zhat(theta)
/// directly (no EM loop — the curve itself is the estimator).
int runSmcAlgo(const mpcgs::Dataset& ds, const mpcgs::Options& opts, double theta0,
               mpcgs::ThreadPool& pool, unsigned threads,
               const mpcgs::RunSupervisor* supervisor) {
    using namespace mpcgs;
    // One-shot curve maximization: no chains, no EM loop. Flags that don't
    // apply were already hard-rejected by validateAlgoFlags in main().
    SmcEstimateOptions so;
    so.theta0 = theta0;
    so.smc.particles = static_cast<std::size_t>(opts.getInt("particles", 1024));
    so.smc.scheme = parseResamplingScheme(opts.get("resampling", "systematic"));
    so.smc.essThreshold = opts.getDouble("ess-threshold", 0.5);
    so.smc.backend =
        parseLikBackend(opts.get("lik-backend", likBackendName(kDefaultLikBackend)));
    so.seed = static_cast<std::uint64_t>(opts.getInt("seed", 20160408));
    so.substModel = opts.get("model", "F81");
    if (opts.has("curve")) so.curvePoints = 81;
    so.checkpointPath = opts.get("checkpoint", "");
    so.checkpointIntervalEvals =
        static_cast<std::size_t>(opts.getInt("checkpoint-interval", 0));
    so.resume = opts.getBool("resume", false);
    so.supervisor = supervisor;

    std::printf("mpcgs smc: %zu loci, %zu particles, %s resampling, %s likelihood "
                "backend, theta0=%.4g, threads=%u\n",
                ds.locusCount(), so.smc.particles,
                resamplingSchemeName(so.smc.scheme).c_str(),
                likBackendName(so.smc.backend), theta0, threads);
    const SmcEstimateResult res = withResumeFallback(
        so.resume, strictResumePolicy(opts), [&] { return estimateThetaSmc(ds, so, &pool); });
    std::printf("SMC theta estimate: %.6g  (pooled log marginal likelihood %.4g, %s)\n",
                res.theta, res.logZAtMax, formatDuration(res.totalSeconds).c_str());
    std::printf("approx. 95%% support interval: [%.6g, %.6g]%s\n", res.support.lower,
                res.support.upper,
                (res.support.lowerBounded && res.support.upperBounded) ? ""
                                                                       : " (open-ended)");
    if (const auto curveFile = opts.get("curve")) {
        std::ofstream f(*curveFile);
        f << "theta,logZ\n";
        for (const auto& [theta, lz] : res.curve) f << theta << ',' << lz << '\n';
        std::printf("SMC marginal-likelihood curve written to %s\n", curveFile->c_str());
    }
    printLikSummary();
    return 0;
}

/// --algo pmmh: particle-marginal MH posterior over theta through the
/// unified sampler runtime (parallel chains, convergence stopping,
/// checkpoint/resume).
int runPmmhAlgo(const mpcgs::Dataset& ds, const mpcgs::Options& opts, double theta0,
                mpcgs::ThreadPool& pool, unsigned threads,
                const mpcgs::RunSupervisor* supervisor) {
    using namespace mpcgs;
    PmmhEstimateOptions po;
    po.theta0 = theta0;
    po.samples = static_cast<std::size_t>(opts.getInt("samples", 2000));
    po.pmmh.chains = static_cast<std::size_t>(opts.getInt("chains", 2));
    po.pmmh.proposalSigma = opts.getDouble("pmmh-sigma", 0.4);
    po.pmmh.seed = static_cast<std::uint64_t>(opts.getInt("seed", 20160408));
    po.pmmh.smc.particles = static_cast<std::size_t>(opts.getInt("particles", 256));
    po.pmmh.smc.scheme = parseResamplingScheme(opts.get("resampling", "systematic"));
    po.pmmh.smc.essThreshold = opts.getDouble("ess-threshold", 0.5);
    po.pmmh.smc.backend =
        parseLikBackend(opts.get("lik-backend", likBackendName(kDefaultLikBackend)));
    po.substModel = opts.get("model", "F81");
    po.stopRhat = opts.getDouble("stop-rhat", 0.0);
    po.stopEss = opts.getDouble("stop-ess", 0.0);
    po.checkpointPath = opts.get("checkpoint", "");
    po.checkpointIntervalTicks =
        static_cast<std::size_t>(opts.getInt("checkpoint-interval", 0));
    po.resume = opts.getBool("resume", false);
    po.supervisor = supervisor;

    std::printf("mpcgs pmmh: %zu loci, %zu chains x %zu particles, %s resampling, "
                "%s likelihood backend, theta0=%.4g, threads=%u\n",
                ds.locusCount(), po.pmmh.chains, po.pmmh.smc.particles,
                resamplingSchemeName(po.pmmh.smc.scheme).c_str(),
                likBackendName(po.pmmh.smc.backend), theta0, threads);
    const PmmhEstimateResult res = withResumeFallback(
        po.resume, strictResumePolicy(opts), [&] { return runPmmh(ds, po, &pool); });
    std::printf("PMMH posterior over theta (%zu samples, accept rate %.2f, %s)%s:\n",
                res.samples, res.acceptRate, formatDuration(res.totalSeconds).c_str(),
                res.stoppedEarly ? "  [converged early]" : "");
    std::printf("  mean %.6g  sd %.4g\n  95%% credible interval [%.6g, %.6g], "
                "median %.6g\n",
                res.posteriorMean, res.posteriorSd, res.q025, res.q975, res.median);
    if (res.rhat > 0.0)
        std::printf("  convergence: R-hat %.4f, pooled ESS %.0f\n", res.rhat, res.ess);
    printLikSummary();
    return 0;
}

mpcgs::ServeEndpoint endpointFromOptions(const mpcgs::Options& opts) {
    mpcgs::ServeEndpoint ep;
    ep.unixPath = opts.get("socket", "");
    ep.host = opts.get("host", "127.0.0.1");
    ep.port = static_cast<int>(opts.getInt("port", 0));
    if (ep.unixPath.empty() && !opts.has("port"))
        throw mpcgs::ConfigError("serve: pass --socket PATH or --port N");
    return ep;
}

mpcgs::OnlineOptions onlineOptionsFrom(const mpcgs::Options& opts) {
    mpcgs::OnlineOptions oo;
    oo.essThreshold = opts.getDouble("ess-threshold", 0.5);
    oo.scheme = mpcgs::parseResamplingScheme(opts.get("resampling", "systematic"));
    oo.backend = mpcgs::parseLikBackend(
        opts.get("lik-backend", mpcgs::likBackendName(mpcgs::kDefaultLikBackend)));
    oo.rejuvenationSweeps =
        static_cast<std::size_t>(opts.getInt("rejuvenation-sweeps", 1));
    return oo;
}

/// mpcgs online-init <seqdata> <theta> --state FILE: cold-start a warm
/// posterior (one full SMC pass) and save it for `mpcgs serve`.
int runOnlineInit(const mpcgs::Options& opts) {
    using namespace mpcgs;
    if (opts.positional().size() != 3) {
        std::fprintf(stderr, "usage: %s online-init <seqdata> <theta> --state FILE\n",
                     opts.programName().c_str());
        return 2;
    }
    const auto statePath = opts.get("state");
    if (!statePath) throw ConfigError("online-init: --state FILE is required");
    const Dataset ds = Dataset::fromFiles({opts.positional()[1]});
    const double theta0 = std::stod(opts.positional()[2]);

    SmcOptions smc;
    smc.particles = static_cast<std::size_t>(opts.getInt("particles", 1024));
    smc.scheme = parseResamplingScheme(opts.get("resampling", "systematic"));
    smc.essThreshold = opts.getDouble("ess-threshold", 0.5);
    smc.backend =
        parseLikBackend(opts.get("lik-backend", likBackendName(kDefaultLikBackend)));
    const auto seed = static_cast<std::uint64_t>(opts.getInt("seed", 20160408));
    const unsigned threads =
        static_cast<unsigned>(opts.getInt("threads", hardwareThreads()));
    ThreadPool pool(threads);

    const OnlineState st = initOnlineState(ds.locus(0).alignment, theta0, smc,
                                           opts.get("model", "F81"), seed, &pool);
    saveOnlineState(*statePath, st);
    std::printf("mpcgs online-init: %zu sequences x %zu bp, %zu particles, "
                "logZ %.6g, theta estimate %.6g, ESS %.2f\n",
                st.alignment.sequenceCount(), st.alignment.length(),
                st.particles.size(), st.logZ, onlineThetaEstimate(st),
                onlineEssFraction(st));
    std::printf("warm posterior written to %s\n", statePath->c_str());
    return 0;
}

/// mpcgs serve --state FILE: load the warm posterior and serve jobs until
/// shutdown (exit 0) or SIGTERM/--max-wall-time (snapshot, exit 3).
int runServe(const mpcgs::Options& opts, std::unique_ptr<mpcgs::RunSupervisor>& supervisor) {
    using namespace mpcgs;
    const auto statePath = opts.get("state");
    if (!statePath) throw ConfigError("serve: --state FILE is required");
    const ServeEndpoint ep = endpointFromOptions(opts);

    OnlineState st = loadOnlineState(*statePath);
    const unsigned threads =
        static_cast<unsigned>(opts.getInt("threads", hardwareThreads()));
    ThreadPool pool(threads);

    RunSupervisor::Config svCfg;
    svCfg.maxWallSeconds = opts.getDouble("max-wall-time", 0.0);
    supervisor = std::make_unique<RunSupervisor>(svCfg);

    // The daemon always counts (serve.* job/latency metrics back the
    // `metrics` protocol job); instrumentation never touches an RNG
    // stream, so live introspection cannot perturb the posterior.
    obs::arm();

    std::unique_ptr<CsvTraceSink> trace;
    if (const auto tracePath = opts.get("trace"))
        trace = std::make_unique<CsvTraceSink>(*tracePath);

    std::printf("mpcgs serve: warm posterior from %s — %zu sequences x %zu bp, "
                "%zu particles, %llu updates so far, logZ %.6g, threads=%u\n",
                statePath->c_str(), st.alignment.sequenceCount(), st.alignment.length(),
                st.particles.size(), static_cast<unsigned long long>(st.updates),
                st.logZ, threads);
    std::fflush(stdout);

    ServeSession session(std::move(st), *statePath, onlineOptionsFrom(opts), &pool,
                         supervisor.get(), trace.get());
    runServeLoop(session, ep);
    std::printf("mpcgs serve: clean shutdown after %llu jobs (%llu updates, logZ %.6g)\n",
                static_cast<unsigned long long>(session.jobsHandled()),
                static_cast<unsigned long long>(session.state().updates),
                session.state().logZ);
    return 0;
}

/// mpcgs serve-send: thin protocol client for tooling and CI smokes.
int runServeSend(const mpcgs::Options& opts) {
    using namespace mpcgs;
    const ServeEndpoint ep = endpointFromOptions(opts);
    std::vector<std::string> lines(opts.positional().begin() + 1, opts.positional().end());
    if (lines.empty()) {
        std::fprintf(stderr, "usage: %s serve-send (--socket PATH | --port P) '<json>'...\n",
                     opts.programName().c_str());
        return 2;
    }
    if (lines.size() == 1 && lines[0] == "-") {
        lines.clear();
        for (std::string line; std::getline(std::cin, line);)
            if (!line.empty()) lines.push_back(line);
    }
    for (const std::string& line : lines) {
        const std::string reply = serveSendLine(ep, line);
        // A prometheus-format metrics reply embeds the text exposition
        // escaped in its "text" field; print it unescaped so the output
        // pipes straight into a scrape file.
        try {
            const json_mini::Object obj = json_mini::parse(reply);
            if (json_mini::has(obj, "format") && json_mini::has(obj, "text") &&
                json_mini::getString(obj, "format") == "prometheus") {
                std::fputs(json_mini::getString(obj, "text").c_str(), stdout);
                continue;
            }
        } catch (const ParseError&) {
            // Not a flat object (or not JSON at all): print verbatim below.
        }
        std::printf("%s\n", reply.c_str());
    }
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    using namespace mpcgs;
    const Options opts = Options::parse(argc, argv);
    if (opts.has("print-config")) {
        std::fputs(buildConfigSummary().c_str(), stdout);
        std::printf("lik backends:    arena, batched (default %s; --lik-backend)\n",
                    likBackendName(kDefaultLikBackend));
        return 0;
    }
    const std::string subcmd =
        opts.positional().empty() ? std::string() : opts.positional().front();
    const bool isSubcommand =
        subcmd == "serve" || subcmd == "online-init" || subcmd == "serve-send";
    const bool haveManifest = opts.has("loci-manifest");
    // Without a manifest at least one locus file plus theta0 is required;
    // with one, theta0 alone suffices.
    if (!isSubcommand && opts.positional().size() < (haveManifest ? 1u : 2u)) {
        usage(argv[0]);
        return 2;
    }

    std::unique_ptr<RunSupervisor> supervisor;
    try {
        // Fault injection arms before anything can fail: the env var first,
        // then --failpoints (later specs override earlier ones per point).
        failpoint::configureFromEnv();
        if (const auto spec = opts.get("failpoints")) failpoint::configure(*spec);

        // Observability arms next, before any instrumented code runs. The
        // registry/recorder never touch an RNG stream, so results are
        // bitwise identical with or without these flags; files are written
        // on clean exit only (an interrupted run keeps exit 3 semantics).
        const auto metricsOut = opts.get("metrics-out");
        const auto traceOut = opts.get("trace-out");
        std::unique_ptr<obs::TraceRecorder> traceRec;
        if (metricsOut || traceOut) obs::arm();
        if (traceOut) {
            traceRec = std::make_unique<obs::TraceRecorder>();
            obs::armTrace(traceRec.get());
        }
        const auto finishObs = [&](int rc) {
            if (traceRec) obs::armTrace(nullptr);
            if (metricsOut) obs::writeMetricsFile(*metricsOut);
            if (traceOut) traceRec->writeFile(*traceOut);
            return rc;
        };

        if (subcmd == "online-init") return finishObs(runOnlineInit(opts));
        if (subcmd == "serve") return finishObs(runServe(opts, supervisor));
        if (subcmd == "serve-send") return runServeSend(opts);

        MpcgsOptions mo;
        mo.theta0 = std::stod(opts.positional().back());
        mo.samplesPerIteration = static_cast<std::size_t>(opts.getInt("samples", 4000));
        mo.emIterations = static_cast<std::size_t>(opts.getInt("em", 4));
        mo.gmhProposals = static_cast<std::size_t>(opts.getInt("proposals", 32));
        mo.gmhSamplesPerSet = static_cast<std::size_t>(opts.getInt("set-samples", 8));
        mo.chains = static_cast<std::size_t>(opts.getInt("chains", 4));
        mo.seed = static_cast<std::uint64_t>(opts.getInt("seed", 20160408));
        mo.substModel = opts.get("model", "F81");

        const std::string strat = opts.get("strategy", "gmh");
        if (strat == "gmh")
            mo.strategy = Strategy::Gmh;
        else if (strat == "mh")
            mo.strategy = Strategy::SerialMh;
        else if (strat == "multichain")
            mo.strategy = Strategy::MultiChain;
        else if (strat == "heated")
            mo.strategy = Strategy::HeatedMh;
        else {
            std::fprintf(stderr, "unknown strategy '%s'\n", strat.c_str());
            return 2;
        }
        mo.cachedBaseline = opts.getBool("cached-baseline", false);

        mo.stopRhat = opts.getDouble("stop-rhat", 0.0);
        mo.stopEss = opts.getDouble("stop-ess", 0.0);
        mo.checkpointPath = opts.get("checkpoint", "");
        mo.checkpointIntervalTicks =
            static_cast<std::size_t>(opts.getInt("checkpoint-interval", 0));
        mo.resume = opts.getBool("resume", false);

        const std::string algo = opts.get("algo", "mcmc");
        if (algo != "mcmc" && algo != "smc" && algo != "pmmh") {
            std::fprintf(stderr, "unknown algo '%s' (expected mcmc|smc|pmmh)\n",
                         algo.c_str());
            return 2;
        }
        if (algo != "mcmc" && opts.has("populations")) {
            std::fprintf(stderr, "mpcgs: --algo %s does not support --populations\n",
                         algo.c_str());
            return 2;
        }

        // Reject nonsense at parse time, before any data is read: value
        // errors first, then flags that do not apply to the selected run
        // mode (exit 2, not a silently ignored flag).
        if (algo == "mcmc" && !opts.has("populations")) validateOptions(mo);
        validateAlgoFlags(opts, opts.has("populations") ? "structured" : algo);

        // Manifest loci first (their rates/names are explicit), then the
        // positional files — whose derived names dedupe against the
        // manifest's the same way colliding file stems do.
        Dataset ds;
        if (haveManifest) ds = Dataset::fromManifest(*opts.get("loci-manifest"));
        const std::vector<std::string> files(opts.positional().begin(),
                                             opts.positional().end() - 1);
        if (!files.empty()) {
            const Dataset extra = Dataset::fromFiles(files);
            for (const Locus& locus : extra.loci()) {
                Locus merged = locus;
                const auto taken = [&](const std::string& n) {
                    for (const Locus& existing : ds.loci())
                        if (existing.name == n) return true;
                    return false;
                };
                for (int n = 2; taken(merged.name); ++n)
                    merged.name = locus.name + "." + std::to_string(n);
                ds.add(std::move(merged));
            }
        }
        if (const auto popMap = opts.get("pop-map")) ds.applyPopMap(readPopMap(*popMap));
        ds.validate();

        const unsigned threads =
            static_cast<unsigned>(opts.getInt("threads", hardwareThreads()));
        ThreadPool pool(threads);

        // One supervisor per run: SIGTERM/SIGINT and --max-wall-time feed
        // the cooperative stop flag every estimator polls at tick and EM
        // boundaries (checkpoint, then exit 3).
        RunSupervisor::Config svCfg;
        svCfg.maxWallSeconds = opts.getDouble("max-wall-time", 0.0);
        supervisor = std::make_unique<RunSupervisor>(svCfg);
        mo.supervisor = supervisor.get();

        if (opts.has("populations"))
            return finishObs(
                runStructured(ds, opts, mo.theta0, pool, threads, supervisor.get()));
        if (algo == "smc")
            return finishObs(
                runSmcAlgo(ds, opts, mo.theta0, pool, threads, supervisor.get()));
        if (algo == "pmmh")
            return finishObs(
                runPmmhAlgo(ds, opts, mo.theta0, pool, threads, supervisor.get()));

        std::printf("mpcgs: %zu loci, %zu total sites, theta0=%.4g, strategy=%s, threads=%u\n",
                    ds.locusCount(), ds.totalSites(), mo.theta0, strat.c_str(), threads);
        for (const Locus& locus : ds.loci()) {
            const std::string rate =
                locus.mutationScale == 1.0
                    ? ""
                    : "  (rate " + std::to_string(locus.mutationScale) + ")";
            std::printf("  locus %-16s %zu sequences x %zu bp%s\n", locus.name.c_str(),
                        locus.alignment.sequenceCount(), locus.alignment.length(),
                        rate.c_str());
        }

        const MpcgsResult res = withResumeFallback(
            mo.resume, strictResumePolicy(opts), [&] { return estimateTheta(ds, mo, &pool); });

        for (std::size_t i = 0; i < res.history.size(); ++i) {
            const auto& h = res.history[i];
            std::printf("  EM %zu: theta %.5g -> %.5g  (logL %.4g, %zu samples, "
                        "move rate %.2f, %s)%s\n",
                        i + 1, h.thetaBefore, h.thetaAfter, h.logLAtMax, h.samples,
                        h.moveRate, formatDuration(h.seconds).c_str(),
                        h.stoppedEarly ? "  [converged early]" : "");
            if (h.rhat > 0.0)
                std::printf("        convergence: worst R-hat %.4f, min pooled ESS %.0f\n",
                            h.rhat, h.ess);
        }
        std::printf("final theta estimate: %.6g  (total %s, sampling %s)\n", res.theta,
                    formatDuration(res.totalSeconds).c_str(),
                    formatDuration(res.samplingSeconds).c_str());

        // Approximate 95% support interval from the final pooled curve.
        if (!res.finalSummaries.empty()) {
            const PooledRelativeLikelihood rl = finalPooledLikelihood(res);
            const SupportInterval si = supportInterval(rl, res.theta, 1.92, 1e4, &pool);
            std::printf("approx. 95%% support interval: [%.6g, %.6g]%s\n", si.lower, si.upper,
                        (si.lowerBounded && si.upperBounded) ? "" : " (open-ended)");
        }

        if (const auto curveFile = opts.get("curve")) {
            const PooledRelativeLikelihood rl = finalPooledLikelihood(res);
            std::ofstream f(*curveFile);
            f << "theta,logL\n";
            for (const auto& [theta, ll] : rl.curve(res.theta / 20, res.theta * 20, 81, &pool))
                f << theta << ',' << ll << '\n';
            std::printf("pooled likelihood curve written to %s\n", curveFile->c_str());
        }
        return finishObs(0);
    } catch (const InterruptedError& e) {
        const std::string reason = supervisor ? supervisor->stopReason() : "";
        std::fprintf(stderr, "mpcgs: %s%s%s%s\n", e.what(), reason.empty() ? "" : " (",
                     reason.c_str(), reason.empty() ? "" : ")");
        if (e.checkpointWritten())
            std::fprintf(stderr,
                         "mpcgs: a final snapshot was written — rerun with --resume to "
                         "continue from it\n");
        return kExitInterrupted;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "mpcgs: %s\n", e.what());
        return exitCodeFor(e);
    }
}
